//! Adversarial traffic and fault injection for the protocol server.
//!
//! Everything the well-behaved drivers in [`service`](crate::service) never
//! do to the server, done deliberately and **deterministically**: Zipfian
//! hot-key skew, bursty open-loop arrivals, corrupted and truncated frames,
//! oversized length prefixes, mid-stream client disconnects, abrupt
//! transport closes, short reads, and poisoned events whose handlers panic.
//! Each attack is seeded through [`DetRng`] streams, so a scenario is a pure
//! function of its [`ChaosConfig`] — the same seed produces byte-identical
//! [`ChaosReport`]s across runs, worker counts, and all four executors,
//! which is exactly what the property tests and CI pin.
//!
//! The module provides three layers:
//!
//! * **Generators** — [`Zipf`], [`adversarial_events`], [`poison_schedule`]:
//!   deterministic hostile traffic.
//! * **Fault injection** — [`FaultPlan`] / [`FaultTransport`]: a wrapper
//!   over any [`Transport`] that corrupts, truncates, closes, or
//!   short-reads at seeded points. [`FaultPlan::action`] is a pure function
//!   of the frame index, so a driver can replay the plan and predict
//!   exactly what the wire carried.
//! * **Scenarios** — [`run_chaos`] drives one [`Scenario`] against an
//!   executor-backed [`ChaosService`] and *verifies* the surviving state
//!   against the sequential [`reference_aggregate`] fold: survival is not
//!   "did not crash" but "every dispatched event is accounted for and no
//!   other key lost anything".
//!
//! The invariants each scenario pins:
//!
//! | scenario     | hostile input                         | pinned invariant |
//! |--------------|---------------------------------------|------------------|
//! | `zipf`       | hot-key skew (tunable `s`)            | aggregate equals the reference fold; every ack digest verifies |
//! | `burst`      | open-loop bursts, acks read late      | serve holds ≤ `window` calls in flight; nothing lost |
//! | `malformed`  | corrupt/truncated frames, wire blobs  | typed `Protocol` errors per connection; decodable prefix still counted; clean reconnect works |
//! | `disconnect` | mid-stream drops, injected closes     | abandoned replies never poison state; later aggregate sees every dispatched event |
//! | `panic`      | poisoned handlers at a seeded rate    | `ACK_PANICKED` for poisoned events only; all other keys' aggregates intact |
//! | `recover`    | injected close kills a WAL-logged server, then a seeded torn cut | recovery replays an exact prefix, never behind a sync point; snapshot+suffix replay equals full-log replay |

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use pdq_core::executor::{Executor, ExecutorExt, TypedFuture};
use pdq_dsm::{BlockAddr, Message, PageAddr, ProtocolEvent, Request};
use pdq_sim::DetRng;

use crate::protocol_server::{reference_aggregate, ServerAggregate, ServerError, ServerState};
use crate::service::{
    decode_ack, decode_aggregate_reply, decode_request, encode_aggregate_request,
    encode_event_request, recv_frame, serve, serve_durable, serve_tcp_once, Durability,
    ProtocolService, Reply, WireRequest, ACK_DONE, ACK_PANICKED,
};
use crate::transport::{loopback_pair, Transport, MAX_FRAME_LEN};
use crate::wal::{replay, scan_bytes, scan_bytes_full, SharedSink, WalFaultPlan, WalWriter};

/// `DetRng` stream id for adversarial event generation.
const EVENT_STREAM: u64 = 0xc4a0_5e7e;
/// `DetRng` stream id for the poison schedule.
const POISON_STREAM: u64 = 0x7071_50ed;
/// `DetRng` stream id base for per-frame fault decisions.
const FAULT_STREAM: u64 = 0xfa17_0b57;
/// `DetRng` stream id for the recover scenario's torn-cut byte.
const RECOVER_STREAM: u64 = 0x4ec0_fa17;

// ---------------------------------------------------------------------------
// Traffic generators
// ---------------------------------------------------------------------------

/// A Zipfian sampler over ranks `0..n`: rank `k` is drawn with probability
/// proportional to `1/(k+1)^s`. At `s = 0` it degenerates to uniform; the
/// larger `s`, the hotter rank 0 — the hot-key regime where dispatch-time
/// synchronization on the hot block serializes a growing share of the
/// stream.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Normalized cumulative weights; `cdf[k]` is `P(rank <= k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with skew parameter `s`.
    pub fn new(n: u64, s: f64) -> Self {
        let n = n.max(1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Self { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.next_f64();
        let rank = self.cdf.partition_point(|&c| c < u);
        rank.min(self.cdf.len() - 1) as u64
    }
}

/// Generates `cfg.events` protocol events whose block references follow a
/// Zipfian distribution of parameter `cfg.zipf_s` (rank 0 is the hottest
/// block), with the same event-kind mix as
/// [`generate_events`](crate::generate_events): half access faults, most of
/// the rest incoming coherence messages of every kind, and an occasional
/// `Sequential`-keyed page operation.
pub fn adversarial_events(cfg: &ChaosConfig) -> Vec<ProtocolEvent> {
    let mut rng = DetRng::stream(cfg.seed, EVENT_STREAM);
    let zipf = Zipf::new(cfg.blocks.max(1), cfg.zipf_s);
    let blocks = cfg.blocks.max(1);
    let nodes = cfg.nodes.max(1) as u64;
    let mut events = Vec::with_capacity(cfg.events);
    for i in 0..cfg.events {
        let block = BlockAddr(zipf.sample(&mut rng));
        let kind = rng.weighted_index(&[0.50, 0.45, 0.05]);
        let event = match kind {
            0 => ProtocolEvent::AccessFault {
                block,
                write: rng.chance(0.4),
                token: i as u64,
            },
            1 => {
                let src = rng.next_below(nodes) as usize;
                let home = rng.next_below(nodes) as usize;
                let value = rng.next_below(1 << 16);
                let msg = match rng.next_below(10) {
                    0 => Message::Req {
                        request: Request::GetShared,
                        requester: src,
                        block,
                    },
                    1 => Message::Req {
                        request: Request::GetExclusive,
                        requester: src,
                        block,
                    },
                    2 => Message::Invalidate { block, home },
                    3 => Message::InvalAck { block, from: src },
                    4 => Message::RecallShared { block, home },
                    5 => Message::RecallExclusive { block, home },
                    6 => Message::WritebackShared {
                        block,
                        from: src,
                        value,
                    },
                    7 => Message::WritebackExclusive {
                        block,
                        from: src,
                        value,
                    },
                    8 => Message::DataShared { block, value },
                    _ => Message::DataExclusive { block, value },
                };
                ProtocolEvent::Incoming { src, msg }
            }
            _ => ProtocolEvent::PageOp {
                page: PageAddr(rng.next_below(blocks / 16 + 1)),
            },
        };
        events.push(event);
    }
    events
}

/// The seeded poison schedule: `true` at index `i` means the handler for the
/// `i`-th dispatched call panics before touching server state.
pub fn poison_schedule(seed: u64, events: usize, rate: f64) -> Vec<bool> {
    let mut rng = DetRng::stream(seed, POISON_STREAM);
    (0..events).map(|_| rng.chance(rate)).collect()
}

// ---------------------------------------------------------------------------
// Fault injection at the transport layer
// ---------------------------------------------------------------------------

/// What a [`FaultPlan`] decided to do with one outbound frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the payload unchanged.
    Deliver,
    /// Deliver this mutated copy instead (one flipped bit, or a truncated
    /// tail).
    Mutate(Vec<u8>),
    /// Fail the send as an abrupt close; every later operation on the
    /// transport fails too.
    Close,
}

/// A seeded plan of transport-level faults: byte corruption and payload
/// truncation at per-frame seeded probabilities, an abrupt close after a
/// fixed number of sends, and an injected short read after a fixed number of
/// receives.
///
/// Decisions are a pure function of `(seed, frame index)` — independent of
/// call timing — so a driver holding the same plan can predict exactly which
/// frames the wire carried and in what shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-frame fault decisions.
    pub seed: u64,
    /// Probability that a sent frame has one bit flipped.
    pub corrupt_rate: f64,
    /// Probability that a sent frame's payload is truncated (checked only
    /// when the frame was not corrupted).
    pub truncate_rate: f64,
    /// After this many successful sends, the next send fails as an abrupt
    /// close and the transport stays dead.
    pub close_after_sends: Option<u64>,
    /// After this many successful receives, the next receive fails as a
    /// short read ([`io::ErrorKind::UnexpectedEof`]) and the transport stays
    /// dead.
    pub fail_recv_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing: the identity wrapper.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            close_after_sends: None,
            fail_recv_after: None,
        }
    }

    /// Decides the fate of the `index`-th sent frame. Pure: the same plan,
    /// index, and payload always produce the same action.
    pub fn action(&self, index: u64, payload: &[u8]) -> FaultAction {
        if let Some(n) = self.close_after_sends {
            if index >= n {
                return FaultAction::Close;
            }
        }
        let mut rng = DetRng::stream(self.seed, FAULT_STREAM ^ index.wrapping_mul(0x9e37));
        if !payload.is_empty() && rng.chance(self.corrupt_rate) {
            let mut mutated = payload.to_vec();
            let at = rng.next_below(mutated.len() as u64) as usize;
            mutated[at] ^= 1 << rng.next_below(8);
            return FaultAction::Mutate(mutated);
        }
        if !payload.is_empty() && rng.chance(self.truncate_rate) {
            let mut mutated = payload.to_vec();
            let keep = rng.next_below(mutated.len() as u64) as usize;
            mutated.truncate(keep);
            return FaultAction::Mutate(mutated);
        }
        FaultAction::Deliver
    }
}

/// A [`Transport`] wrapper executing a [`FaultPlan`]: frames pass through
/// `inner` unless the plan corrupts, truncates, or closes; receives succeed
/// until the plan injects a short read. Once a close or short read fires the
/// transport stays dead — every later operation is a typed I/O error, like a
/// real broken socket.
#[derive(Debug)]
pub struct FaultTransport<T> {
    inner: T,
    plan: FaultPlan,
    sends: u64,
    recvs: u64,
    closed: bool,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            sends: 0,
            recvs: 0,
            closed: false,
        }
    }

    /// Frames offered for sending so far (including the failing one).
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Frames received successfully so far.
    pub fn recvs(&self) -> u64 {
        self.recvs
    }

    fn dead(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::BrokenPipe,
            "fault injection: transport closed",
        )
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.closed {
            return Err(self.dead());
        }
        let index = self.sends;
        self.sends += 1;
        match self.plan.action(index, payload) {
            FaultAction::Deliver => self.inner.send(payload),
            FaultAction::Mutate(mutated) => self.inner.send(&mutated),
            FaultAction::Close => {
                self.closed = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "fault injection: abrupt close on send",
                ))
            }
        }
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.closed {
            return Err(self.dead());
        }
        if let Some(n) = self.plan.fail_recv_after {
            if self.recvs >= n {
                self.closed = true;
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "fault injection: short read",
                ));
            }
        }
        let frame = self.inner.recv()?;
        self.recvs += 1;
        Ok(frame)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.closed {
            return Err(self.dead());
        }
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// The chaos service
// ---------------------------------------------------------------------------

/// Records the order in which block-keyed handlers actually ran, one log per
/// block, for the per-key FIFO property tests.
#[derive(Debug)]
pub struct KeyOrderRecorder {
    orders: Vec<Mutex<Vec<u64>>>,
}

impl KeyOrderRecorder {
    /// Creates empty logs for `blocks` blocks.
    pub fn new(blocks: u64) -> Self {
        Self {
            orders: (0..blocks.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Appends dispatch sequence number `seq` to `block`'s log. Called from
    /// the handler, so entries land in actual execution order.
    pub fn record(&self, block: BlockAddr, seq: u64) {
        let idx = (block.0 % self.orders.len() as u64) as usize;
        self.orders[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(seq);
    }

    /// The execution-order log for `block`.
    pub fn order(&self, block: u64) -> Vec<u64> {
        let idx = (block % self.orders.len() as u64) as usize;
        self.orders[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A [`ProtocolService`] over any [`Executor`] with fault hooks: a seeded
/// poison schedule makes selected handlers panic *before* touching server
/// state (so every non-poisoned key's aggregate stays exact), and an
/// optional [`KeyOrderRecorder`] logs actual per-key execution order.
///
/// Unlike [`ExecutorService`](crate::ExecutorService), the aggregate uses an
/// *internal* completion counter rather than the driver-observed count:
/// adversarial connections abandon in-flight replies, whose handlers still
/// complete — the service is the only party that can still count them.
pub struct ChaosService<'a> {
    executor: &'a dyn Executor,
    state: Arc<ServerState>,
    poison: Arc<Vec<bool>>,
    recorder: Option<Arc<KeyOrderRecorder>>,
    calls: AtomicU64,
    completed: Arc<AtomicU64>,
}

impl std::fmt::Debug for ChaosService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosService")
            .field("executor", &self.executor.name())
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'a> ChaosService<'a> {
    /// Creates a service over `executor` with fresh state for `blocks`
    /// blocks and no faults armed.
    pub fn new(executor: &'a dyn Executor, blocks: u64) -> Self {
        Self {
            executor,
            state: Arc::new(ServerState::new(blocks)),
            poison: Arc::new(Vec::new()),
            recorder: None,
            calls: AtomicU64::new(0),
            completed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Arms the poison schedule: call `i` panics when `poison[i]` is true.
    #[must_use]
    pub fn with_poison(mut self, poison: Vec<bool>) -> Self {
        self.poison = Arc::new(poison);
        self
    }

    /// Attaches an execution-order recorder.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<KeyOrderRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Total calls dispatched through this service, across all connections.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Handlers that ran to completion (not poisoned, not abandoned before
    /// execution).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }
}

impl ProtocolService for ChaosService<'_> {
    fn call(&self, request: ProtocolEvent) -> TypedFuture<Reply> {
        // The serve loop is single-threaded per connection and scenarios run
        // connections sequentially, so this sequence number equals the
        // arrival order of the event — which is what the poison schedule and
        // the FIFO assertions are indexed by.
        let seq = self.calls.fetch_add(1, Ordering::SeqCst);
        let poisoned = self.poison.get(seq as usize).copied().unwrap_or(false);
        let state = Arc::clone(&self.state);
        let completed = Arc::clone(&self.completed);
        let recorder = self.recorder.clone();
        self.executor
            .submit_async_returning(request.sync_key(), move || {
                if let Some(rec) = &recorder {
                    match &request {
                        ProtocolEvent::AccessFault { block, .. } => rec.record(*block, seq),
                        ProtocolEvent::Incoming { msg, .. } => rec.record(msg.block(), seq),
                        ProtocolEvent::PageOp { .. } => {}
                    }
                }
                if poisoned {
                    panic!("chaos: poisoned event {seq}");
                }
                state.handle(&request);
                completed.fetch_add(1, Ordering::Relaxed);
                Reply::for_event(&request)
            })
    }

    fn flush(&self) {
        self.executor.flush();
    }

    fn aggregate(&self, _driver_completed: u64) -> ServerAggregate {
        self.state.aggregate(self.completed.load(Ordering::SeqCst))
    }

    fn snapshot_words(&self) -> Option<Vec<u64>> {
        Some(self.state.snapshot_words())
    }
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// One adversarial scenario of the chaos harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Zipfian hot-key skew through the windowed client.
    Zipf,
    /// Open-loop bursts that read acks only between bursts.
    Burst,
    /// Corrupted/truncated frames and hostile wire blobs.
    Malformed,
    /// Mid-stream client disconnects and injected transport failures.
    Disconnect,
    /// Poisoned events whose handlers panic under load.
    Panic,
    /// A mid-stream kill of a WAL-logged server followed by a torn-cut
    /// recovery replay.
    Recover,
}

impl Scenario {
    /// Every scenario, in the order `--scenario all` runs them.
    pub const ALL: [Scenario; 6] = [
        Scenario::Zipf,
        Scenario::Burst,
        Scenario::Malformed,
        Scenario::Disconnect,
        Scenario::Panic,
        Scenario::Recover,
    ];

    /// Parses a scenario name as used by `examples/chaos.rs --scenario`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "zipf" => Some(Self::Zipf),
            "burst" => Some(Self::Burst),
            "malformed" => Some(Self::Malformed),
            "disconnect" => Some(Self::Disconnect),
            "panic" => Some(Self::Panic),
            "recover" => Some(Self::Recover),
            _ => None,
        }
    }

    /// The scenario's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Zipf => "zipf",
            Self::Burst => "burst",
            Self::Malformed => "malformed",
            Self::Disconnect => "disconnect",
            Self::Panic => "panic",
            Self::Recover => "recover",
        }
    }
}

/// Configuration of one chaos run: the scenario's traffic, faults, and
/// outcome are a pure function of this value (plus the executor's key
/// contract, which is the thing under test).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Which scenario to run.
    pub scenario: Scenario,
    /// Seed for traffic, poison, and fault streams.
    pub seed: u64,
    /// Number of protocol events in the scenario's stream.
    pub events: usize,
    /// Nodes appearing as message sources.
    pub nodes: usize,
    /// Distinct cache blocks (synchronization keys).
    pub blocks: u64,
    /// Zipf skew parameter for block references.
    pub zipf_s: f64,
    /// Frames per open-loop burst (burst scenario).
    pub burst: usize,
    /// Poison probability per event (panic scenario).
    pub poison_rate: f64,
    /// The server's reply window.
    pub window: usize,
}

impl ChaosConfig {
    /// The default chaos configuration for `scenario`: 4 000 events over 64
    /// blocks with strong skew (`s = 1.2`), a reply window of 32, bursts of
    /// 96 frames, and a 5% poison rate.
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            seed: 0x0dd5_eed5,
            events: 4_000,
            nodes: 8,
            blocks: 64,
            zipf_s: 1.2,
            burst: 96,
            poison_rate: 0.05,
            window: 32,
        }
    }

    /// A test-sized configuration (600 events).
    pub fn quick(scenario: Scenario) -> Self {
        Self {
            events: 600,
            ..Self::new(scenario)
        }
    }

    /// Replaces the seed, keeping everything else.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the event count, keeping everything else.
    #[must_use]
    pub fn events(mut self, events: usize) -> Self {
        self.events = events.max(1);
        self
    }

    /// Replaces the reply window, keeping everything else.
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.window = window.max(2);
        self
    }

    /// Replaces the Zipf skew parameter, keeping everything else.
    #[must_use]
    pub fn zipf_s(mut self, s: f64) -> Self {
        self.zipf_s = s;
        self
    }

    /// Replaces the burst length, keeping everything else.
    #[must_use]
    pub fn burst(mut self, burst: usize) -> Self {
        self.burst = burst.max(1);
        self
    }

    /// Replaces the poison rate, keeping everything else.
    #[must_use]
    pub fn poison_rate(mut self, rate: f64) -> Self {
        self.poison_rate = rate;
        self
    }
}

/// Outcome of one chaos scenario on one executor. Deliberately contains no
/// executor name, worker count, or timing: equal configurations must render
/// byte-identical JSON whatever ran them, and CI diffs exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// The scenario that ran.
    pub scenario: &'static str,
    /// Frames offered to the server, including hostile ones.
    pub frames_sent: u64,
    /// Events the server actually dispatched (the aggregate's event count).
    pub handled: u64,
    /// Handlers that ran to completion.
    pub completed: u64,
    /// Handlers that panicked on poisoned events.
    pub panicked: u64,
    /// Connections torn down with a typed [`ServerError::Protocol`].
    pub protocol_errors: u64,
    /// Connections torn down with a typed [`ServerError::Io`].
    pub io_errors: u64,
    /// Client-initiated disconnects the server survived cleanly.
    pub disconnects: u64,
    /// The surviving aggregate, verified against the sequential reference.
    pub aggregate: ServerAggregate,
}

impl ChaosReport {
    /// The report as a JSON document with a stable field order, so equal
    /// reports render byte-identically (CI diffs these files across
    /// executors, and the determinism tests across runs and worker counts).
    pub fn to_json_string(&self) -> String {
        let agg = self.aggregate.to_json_string();
        let agg = agg.trim_end().replace('\n', "\n  ");
        format!(
            "{{\n  \"scenario\": \"{}\",\n  \"frames_sent\": {},\n  \"handled\": {},\n  \
             \"completed\": {},\n  \"panicked\": {},\n  \"protocol_errors\": {},\n  \
             \"io_errors\": {},\n  \"disconnects\": {},\n  \"aggregate\": {}\n}}\n",
            self.scenario,
            self.frames_sent,
            self.handled,
            self.completed,
            self.panicked,
            self.protocol_errors,
            self.io_errors,
            self.disconnects,
            agg,
        )
    }
}

/// What the client expects the in-order ack for one event to say.
#[derive(Debug, Clone, Copy)]
enum Expect {
    /// `ACK_DONE` carrying exactly this reply.
    Done(Reply),
    /// `ACK_PANICKED` (the event was poisoned).
    Panic,
}

impl Expect {
    fn for_event(event: &ProtocolEvent, poisoned: bool) -> Self {
        if poisoned {
            Expect::Panic
        } else {
            Expect::Done(Reply::for_event(event))
        }
    }
}

/// Reads and verifies one in-order ack against the front of `queue`.
fn read_expected_ack(
    transport: &mut dyn Transport,
    queue: &mut VecDeque<Expect>,
    panicked: &mut u64,
) -> Result<(), ServerError> {
    let frame = recv_frame(transport)?
        .ok_or_else(|| ServerError::Protocol("server closed before acking".into()))?;
    let ack = decode_ack(&frame)?;
    let want = queue
        .pop_front()
        .expect("an ack is only awaited for an outstanding request");
    match (ack.status, want) {
        (ACK_DONE, Expect::Done(reply)) if ack.reply == reply => Ok(()),
        (ACK_PANICKED, Expect::Panic) => {
            *panicked += 1;
            Ok(())
        }
        (status, want) => Err(ServerError::Protocol(format!(
            "ack mismatch: status {status}, reply {:?}, expected {want:?}",
            ack.reply
        ))),
    }
}

/// Requests and decodes the aggregate (any outstanding acks must have been
/// drained by the caller or be drained here via `queue`).
fn fetch_aggregate(
    transport: &mut dyn Transport,
    queue: &mut VecDeque<Expect>,
    panicked: &mut u64,
) -> Result<ServerAggregate, ServerError> {
    transport
        .send(&encode_aggregate_request())
        .map_err(ServerError::Io)?;
    transport.flush().map_err(ServerError::Io)?;
    while !queue.is_empty() {
        read_expected_ack(transport, queue, panicked)?;
    }
    let frame = recv_frame(transport)?
        .ok_or_else(|| ServerError::Protocol("server closed before the aggregate".into()))?;
    decode_aggregate_reply(&frame)
}

/// Streams `events` with a sliding window of unanswered requests, verifying
/// every ack, then fetches the aggregate. `poison[i]` marks events whose ack
/// must be `ACK_PANICKED`. The client window is sized off the server's so
/// the pipeline never deadlocks.
fn windowed_run(
    transport: &mut dyn Transport,
    events: &[ProtocolEvent],
    poison: &[bool],
    server_window: usize,
) -> Result<(ServerAggregate, u64), ServerError> {
    let client_window = server_window * 2 + 8;
    let mut queue: VecDeque<Expect> = VecDeque::with_capacity(client_window);
    let mut panicked = 0u64;
    for (i, event) in events.iter().enumerate() {
        transport
            .send(&encode_event_request(event))
            .map_err(ServerError::Io)?;
        queue.push_back(Expect::for_event(
            event,
            poison.get(i).copied().unwrap_or(false),
        ));
        if queue.len() >= client_window {
            read_expected_ack(transport, &mut queue, &mut panicked)?;
        }
    }
    let aggregate = fetch_aggregate(transport, &mut queue, &mut panicked)?;
    Ok((aggregate, panicked))
}

/// Fails the scenario if the surviving aggregate does not equal the
/// sequential reference fold.
fn expect_reference(
    scenario: Scenario,
    got: &ServerAggregate,
    want: &ServerAggregate,
) -> Result<(), ServerError> {
    if got == want {
        Ok(())
    } else {
        Err(ServerError::Protocol(format!(
            "{}: surviving aggregate diverged from the sequential reference \
             (got {} events / checksum {:#x}, want {} events / checksum {:#x})",
            scenario.name(),
            got.events,
            got.block_checksum,
            want.events,
            want.block_checksum,
        )))
    }
}

/// Runs one chaos scenario against `executor` and returns its report.
///
/// Every scenario *verifies* its outcome before returning: ack digests are
/// checked in order, hostile connections must fail with the typed error the
/// driver predicted, and the surviving aggregate must equal the sequential
/// [`reference_aggregate`] fold of exactly the events the server dispatched.
/// The report is a pure function of `cfg` — independent of the executor,
/// its worker count, and scheduling — so chaos reports can be byte-diffed
/// across all four executors.
///
/// # Errors
///
/// Any unexpected outcome: a connection that should have failed but did
/// not, an ack that does not verify, an aggregate that diverged from the
/// reference, or a transport error outside the injected faults.
pub fn run_chaos(executor: &dyn Executor, cfg: &ChaosConfig) -> Result<ChaosReport, ServerError> {
    match cfg.scenario {
        Scenario::Zipf => run_zipf(executor, cfg),
        Scenario::Burst => run_burst(executor, cfg),
        Scenario::Malformed => run_malformed(executor, cfg),
        Scenario::Disconnect => run_disconnect(executor, cfg),
        Scenario::Panic => run_panic(executor, cfg),
        Scenario::Recover => run_recover(executor, cfg),
    }
}

/// Zipfian hot-key skew through the well-behaved windowed client: the
/// baseline adversarial load. Pins that extreme same-key contention loses
/// nothing and reorders nothing observably.
fn run_zipf(executor: &dyn Executor, cfg: &ChaosConfig) -> Result<ChaosReport, ServerError> {
    let events = adversarial_events(cfg);
    let service = ChaosService::new(executor, cfg.blocks);
    let (mut client_end, mut server_end) = loopback_pair();
    let aggregate = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve(&service, &mut server_end, cfg.window));
        let outcome = windowed_run(&mut client_end, &events, &[], cfg.window);
        drop(client_end);
        server.join().expect("server thread")?;
        outcome
    })?
    .0;
    let reference = reference_aggregate(events.iter(), cfg.blocks);
    expect_reference(cfg.scenario, &aggregate, &reference)?;
    Ok(ChaosReport {
        scenario: cfg.scenario.name(),
        frames_sent: events.len() as u64 + 1,
        handled: aggregate.events,
        completed: aggregate.completed,
        panicked: 0,
        protocol_errors: 0,
        io_errors: 0,
        disconnects: 0,
        aggregate,
    })
}

/// Open-loop bursty arrivals: the client fires `cfg.burst` frames at a time
/// without reading, then drains only the acks the server was *forced* to
/// emit (the serve loop acks the oldest call exactly when its window fills).
/// Pins the serve loop's bounded buffering: the flood lands in transport
/// buffers, never in unbounded server state, and nothing is lost.
fn run_burst(executor: &dyn Executor, cfg: &ChaosConfig) -> Result<ChaosReport, ServerError> {
    let events = adversarial_events(cfg);
    let service = ChaosService::new(executor, cfg.blocks);
    let (mut client_end, mut server_end) = loopback_pair();
    let aggregate = std::thread::scope(|scope| -> Result<ServerAggregate, ServerError> {
        let server = scope.spawn(|| serve(&service, &mut server_end, cfg.window));
        let mut queue: VecDeque<Expect> = VecDeque::new();
        let mut panicked = 0u64;
        let mut sent = 0usize;
        let mut read = 0usize;
        for chunk in events.chunks(cfg.burst.max(1)) {
            for event in chunk {
                client_end
                    .send(&encode_event_request(event))
                    .map_err(ServerError::Io)?;
                queue.push_back(Expect::for_event(event, false));
            }
            sent += chunk.len();
            // Off phase: the server has been forced to ack everything beyond
            // window - 1 outstanding; drain exactly that many (blocking).
            let forced = sent.saturating_sub(cfg.window - 1);
            while read < forced {
                read_expected_ack(&mut client_end, &mut queue, &mut panicked)?;
                read += 1;
            }
        }
        let aggregate = fetch_aggregate(&mut client_end, &mut queue, &mut panicked)?;
        drop(client_end);
        server.join().expect("server thread")?;
        Ok(aggregate)
    })?;
    let reference = reference_aggregate(events.iter(), cfg.blocks);
    expect_reference(cfg.scenario, &aggregate, &reference)?;
    Ok(ChaosReport {
        scenario: cfg.scenario.name(),
        frames_sent: events.len() as u64 + 1,
        handled: aggregate.events,
        completed: aggregate.completed,
        panicked: 0,
        protocol_errors: 0,
        io_errors: 0,
        disconnects: 0,
        aggregate,
    })
}

/// The hostile raw byte streams thrown at a TCP connection in the malformed
/// scenario, each expected to tear down its connection with a typed
/// [`ServerError::Protocol`].
fn hostile_wire_blobs() -> Vec<(&'static str, Vec<u8>)> {
    let frame = |payload: &[u8]| {
        let mut v = (payload.len() as u32).to_le_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    };
    vec![
        (
            "oversized length prefix",
            (MAX_FRAME_LEN + 1).to_le_bytes().to_vec(),
        ),
        ("16 MiB claim, 3 bytes delivered", {
            let mut v = MAX_FRAME_LEN.to_le_bytes().to_vec();
            v.extend_from_slice(&[1, 2, 3]);
            v
        }),
        ("partial length prefix", vec![0x2A, 0x00]),
        ("unknown request tag", frame(&[0x7F, 1, 2, 3, 4])),
        (
            "trailing bytes after aggregate request",
            frame(&[0x02, 0x00]),
        ),
    ]
}

/// Corrupted and truncated frames (via [`FaultTransport`] on the client
/// side) plus raw hostile wire blobs over TCP, then a clean reconnect. Pins
/// per-frame rejection with clean connection teardown: the decodable prefix
/// of the faulted stream still counts, every hostile blob yields a typed
/// protocol error, and a well-behaved client afterwards sees exact state.
fn run_malformed(executor: &dyn Executor, cfg: &ChaosConfig) -> Result<ChaosReport, ServerError> {
    let events = adversarial_events(cfg);
    let service = ChaosService::new(executor, cfg.blocks);
    let mut frames_sent = 0u64;
    let mut protocol_errors = 0u64;

    // Phase A — the event stream through a corrupting/truncating transport.
    // Replay the plan to predict exactly what the server will decode: the
    // prefix of frames that still decode as events is dispatched; the first
    // undecodable frame tears the connection down.
    let plan = FaultPlan {
        seed: cfg.seed,
        corrupt_rate: 0.06,
        truncate_rate: 0.04,
        close_after_sends: None,
        fail_recv_after: None,
    };
    let frames: Vec<Vec<u8>> = events.iter().map(encode_event_request).collect();
    let mut dispatched: Vec<ProtocolEvent> = Vec::new();
    let mut expect_error = false;
    for (i, frame) in frames.iter().enumerate() {
        let wire = match plan.action(i as u64, frame) {
            FaultAction::Deliver => frame.clone(),
            FaultAction::Mutate(mutated) => mutated,
            FaultAction::Close => break,
        };
        match decode_request(&wire) {
            Ok(WireRequest::Event(event)) => dispatched.push(event),
            // A one-bit flip cannot turn REQ_EVENT (0x01) into REQ_AGGREGATE
            // (0x02) or REQ_METRICS (0x04) — both differ in two bits — and a
            // flip to REQ_DRAIN (0x03) leaves the event body as trailing
            // bytes (a decode error), so these arms are unreachable for the
            // plan above; treat them as a driver bug.
            Ok(WireRequest::Aggregate | WireRequest::Drain | WireRequest::Metrics) => {
                return Err(ServerError::Protocol(
                    "malformed: mutation produced a control request".into(),
                ))
            }
            Err(_) => {
                expect_error = true;
                break;
            }
        }
    }
    {
        let (client_end, mut server_end) = loopback_pair();
        let outcome = std::thread::scope(|scope| {
            // A window larger than the stream: the server never acks
            // mid-stream, so the faulted client needs no ack protocol.
            let server = scope.spawn(|| serve(&service, &mut server_end, events.len() + 2));
            let mut faulted = FaultTransport::new(client_end, plan);
            for frame in &events {
                // The server tears the connection down at the first bad
                // frame; later sends may fail against the dropped endpoint.
                if faulted.send(&encode_event_request(frame)).is_err() {
                    break;
                }
                frames_sent += 1;
            }
            drop(faulted);
            server.join().expect("server thread")
        });
        match (expect_error, outcome) {
            (true, Err(ServerError::Protocol(_))) => protocol_errors += 1,
            (false, Ok(_)) => {}
            (want_err, other) => {
                return Err(ServerError::Protocol(format!(
                    "malformed: faulted stream outcome {other:?} (expected error: {want_err})"
                )))
            }
        }
    }

    // Phase B — raw hostile byte blobs over real TCP connections. Every one
    // must surface as a typed protocol violation, never a panic or a hang.
    let listener = TcpListener::bind("127.0.0.1:0").map_err(ServerError::Io)?;
    let addr = listener.local_addr().map_err(ServerError::Io)?;
    for (label, blob) in hostile_wire_blobs() {
        let outcome = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_tcp_once(&listener, &service, cfg.window));
            let mut stream = TcpStream::connect(addr).map_err(ServerError::Io)?;
            use std::io::Write;
            stream.write_all(&blob).map_err(ServerError::Io)?;
            drop(stream);
            server.join().expect("server thread")
        });
        frames_sent += 1;
        match outcome {
            Err(ServerError::Protocol(_)) => protocol_errors += 1,
            other => {
                return Err(ServerError::Protocol(format!(
                    "malformed: hostile blob `{label}` yielded {other:?} instead of a \
                     protocol error"
                )))
            }
        }
    }

    // Phase C — clean reconnect: the full event stream through a
    // well-behaved windowed client. The aggregate must account for the
    // faulted phase's decodable prefix plus this clean stream, exactly.
    let (mut client_end, mut server_end) = loopback_pair();
    let aggregate = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve(&service, &mut server_end, cfg.window));
        let outcome = windowed_run(&mut client_end, &events, &[], cfg.window);
        drop(client_end);
        server.join().expect("server thread")?;
        outcome
    })?
    .0;
    frames_sent += events.len() as u64 + 1;
    let reference = reference_aggregate(dispatched.iter().chain(events.iter()), cfg.blocks);
    expect_reference(cfg.scenario, &aggregate, &reference)?;
    Ok(ChaosReport {
        scenario: cfg.scenario.name(),
        frames_sent,
        handled: aggregate.events,
        completed: aggregate.completed,
        panicked: 0,
        protocol_errors,
        io_errors: 0,
        disconnects: 0,
        aggregate,
    })
}

/// Mid-stream client disconnects plus injected transport failures on the
/// server side. Pins that abandoned in-flight replies never poison state:
/// every event the server dispatched before each disconnect is present in
/// the final aggregate, fetched over a fresh connection.
fn run_disconnect(executor: &dyn Executor, cfg: &ChaosConfig) -> Result<ChaosReport, ServerError> {
    let events = adversarial_events(cfg);
    let service = ChaosService::new(executor, cfg.blocks);
    let w = cfg.window.max(2);
    let mut frames_sent = 0u64;
    let mut disconnects = 0u64;
    let mut protocol_errors = 0u64;
    let mut io_errors = 0u64;

    // Partition the stream: a flood segment for the injected-close
    // connection, a tail for the ack-then-drop connection, and the rest for
    // plain send-and-vanish connections.
    let flood_len = (w + 10).min(events.len());
    let (flood, rest) = events.split_at(flood_len);
    let tail_len = (w + 5).min(rest.len());
    let (tail, dropped) = rest.split_at(tail_len);

    // Sub-case 1 — abrupt close injected on the server's sending side: the
    // FaultTransport lets two acks out, then fails the third send. The
    // server dispatches exactly window + 2 events before the failure (one
    // new frame per ack after the window first fills).
    let close_after = 2u64;
    let expected_flood_dispatch = (w + close_after as usize).min(flood.len());
    {
        let (mut client_end, server_end) = loopback_pair();
        let plan = FaultPlan {
            close_after_sends: Some(close_after),
            ..FaultPlan::clean(cfg.seed)
        };
        let outcome = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut faulted = FaultTransport::new(server_end, plan);
                serve(&service, &mut faulted, w)
            });
            for event in flood {
                client_end
                    .send(&encode_event_request(event))
                    .map_err(ServerError::Io)?;
            }
            frames_sent += flood.len() as u64;
            // The two acks that escaped before the close must still verify.
            let mut queue: VecDeque<Expect> =
                flood.iter().map(|e| Expect::for_event(e, false)).collect();
            let mut panicked = 0u64;
            for _ in 0..close_after {
                read_expected_ack(&mut client_end, &mut queue, &mut panicked)?;
            }
            // The server died mid-connection; the client sees a close.
            match client_end.recv() {
                Ok(None) => {}
                other => {
                    return Err(ServerError::Protocol(format!(
                        "disconnect: expected the faulted server to close, got {other:?}"
                    )))
                }
            }
            server.join().expect("server thread")
        });
        match outcome {
            Err(ServerError::Io(_)) => io_errors += 1,
            other => {
                return Err(ServerError::Protocol(format!(
                    "disconnect: injected close yielded {other:?} instead of an I/O error"
                )))
            }
        }
    }

    // Sub-case 2 — ack-then-drop: the client streams the tail, blocks until
    // it has read every ack the server was forced to emit (so the server
    // has consumed the whole tail), then vanishes without draining the
    // window. The abandoned in-flight replies must still execute.
    {
        let (mut client_end, mut server_end) = loopback_pair();
        let outcome = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve(&service, &mut server_end, w));
            let mut queue: VecDeque<Expect> = VecDeque::new();
            let mut panicked = 0u64;
            for event in tail {
                client_end
                    .send(&encode_event_request(event))
                    .map_err(ServerError::Io)?;
                queue.push_back(Expect::for_event(event, false));
            }
            frames_sent += tail.len() as u64;
            let forced = tail.len().saturating_sub(w - 1);
            for _ in 0..forced {
                read_expected_ack(&mut client_end, &mut queue, &mut panicked)?;
            }
            drop(client_end);
            server.join().expect("server thread")
        });
        match outcome {
            Ok(_) => disconnects += 1,
            Err(e) => return Err(e),
        }
    }

    // Sub-case 3 — send-and-vanish: each connection streams fewer frames
    // than the window (so no ack is ever due) and drops. The server sees a
    // clean EOF with the whole slice in flight and abandons the replies.
    for chunk in dropped.chunks(w - 1) {
        let (mut client_end, mut server_end) = loopback_pair();
        let outcome = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve(&service, &mut server_end, w));
            for event in chunk {
                client_end
                    .send(&encode_event_request(event))
                    .map_err(ServerError::Io)?;
            }
            frames_sent += chunk.len() as u64;
            drop(client_end);
            server.join().expect("server thread")
        });
        match outcome {
            Ok(_) => disconnects += 1,
            Err(e) => return Err(e),
        }
    }

    // Sub-case 4 — mid-frame TCP disconnect: two bytes of a length prefix,
    // then gone. A typed protocol violation, zero events dispatched.
    {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(ServerError::Io)?;
        let addr = listener.local_addr().map_err(ServerError::Io)?;
        let outcome = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_tcp_once(&listener, &service, w));
            let mut stream = TcpStream::connect(addr).map_err(ServerError::Io)?;
            use std::io::Write;
            stream.write_all(&[0x08, 0x00]).map_err(ServerError::Io)?;
            drop(stream);
            server.join().expect("server thread")
        });
        frames_sent += 1;
        match outcome {
            Err(ServerError::Protocol(_)) => protocol_errors += 1,
            other => {
                return Err(ServerError::Protocol(format!(
                    "disconnect: mid-frame close yielded {other:?} instead of a protocol error"
                )))
            }
        }
    }

    // Final connection — nothing but an aggregate request. Its serve path
    // flushes the service first, so every abandoned in-flight handler from
    // the connections above has completed before the fold is read.
    let (mut client_end, mut server_end) = loopback_pair();
    let aggregate = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve(&service, &mut server_end, w));
        let mut queue = VecDeque::new();
        let mut panicked = 0u64;
        let outcome = fetch_aggregate(&mut client_end, &mut queue, &mut panicked);
        drop(client_end);
        server.join().expect("server thread")?;
        outcome
    })?;
    frames_sent += 1;
    let reference = reference_aggregate(
        flood[..expected_flood_dispatch]
            .iter()
            .chain(tail.iter())
            .chain(dropped.iter()),
        cfg.blocks,
    );
    expect_reference(cfg.scenario, &aggregate, &reference)?;
    Ok(ChaosReport {
        scenario: cfg.scenario.name(),
        frames_sent,
        handled: aggregate.events,
        completed: aggregate.completed,
        panicked: 0,
        protocol_errors,
        io_errors,
        disconnects,
        aggregate,
    })
}

/// Poisoned events whose handlers panic at the seeded rate, under the full
/// windowed load. Pins panic containment: poisoned events ack as
/// `ACK_PANICKED` in order, and the aggregate equals the reference fold of
/// exactly the non-poisoned events — no other key loses anything.
fn run_panic(executor: &dyn Executor, cfg: &ChaosConfig) -> Result<ChaosReport, ServerError> {
    let events = adversarial_events(cfg);
    let poison = poison_schedule(cfg.seed, events.len(), cfg.poison_rate);
    let service = ChaosService::new(executor, cfg.blocks).with_poison(poison.clone());
    let (mut client_end, mut server_end) = loopback_pair();
    let (aggregate, panicked) = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve(&service, &mut server_end, cfg.window));
        let outcome = windowed_run(&mut client_end, &events, &poison, cfg.window);
        drop(client_end);
        server.join().expect("server thread")?;
        outcome
    })?;
    let expected_panics = poison.iter().filter(|&&p| p).count() as u64;
    if panicked != expected_panics {
        return Err(ServerError::Protocol(format!(
            "panic: {panicked} handlers panicked, poison schedule has {expected_panics}"
        )));
    }
    let survivors = events
        .iter()
        .zip(poison.iter())
        .filter(|(_, &p)| !p)
        .map(|(e, _)| e);
    let reference = reference_aggregate(survivors, cfg.blocks);
    expect_reference(cfg.scenario, &aggregate, &reference)?;
    Ok(ChaosReport {
        scenario: cfg.scenario.name(),
        frames_sent: events.len() as u64 + 1,
        handled: aggregate.events,
        completed: aggregate.completed,
        panicked,
        protocol_errors: 0,
        io_errors: 0,
        disconnects: 0,
        aggregate,
    })
}

/// Kills a WAL-logged server mid-stream with an injected transport close,
/// cuts the log image at a seeded byte inside the unsynced tail (a torn
/// write, possibly mid-record), recovers, and replays. Pins the durability
/// contract end to end: the recovered aggregate equals the sequential
/// reference fold of an *exact prefix* of the appended events, the prefix is
/// never shorter than the last sync point, and a snapshot+suffix replay is
/// byte-identical to replaying the full log.
fn run_recover(executor: &dyn Executor, cfg: &ChaosConfig) -> Result<ChaosReport, ServerError> {
    let events = adversarial_events(cfg);
    let service = ChaosService::new(executor, cfg.blocks);
    let window = cfg.window.max(2);
    let sink = SharedSink::new();
    let mut wal = WalWriter::new(sink.clone(), cfg.blocks).map_err(ServerError::Io)?;

    // Queue the whole stream up front (the loopback channel is unbounded),
    // so the serve loop runs inline on this thread and dies at a point that
    // is a pure function of the config. The trailing aggregate requests
    // force replies even when the stream is shorter than the reply window,
    // so the close always fires.
    let (mut client_end, server_end) = loopback_pair();
    for event in &events {
        client_end
            .send(&encode_event_request(event))
            .map_err(ServerError::Io)?;
    }
    for _ in 0..3 {
        client_end
            .send(&encode_aggregate_request())
            .map_err(ServerError::Io)?;
    }
    let frames_sent = events.len() as u64 + 3;
    let plan = FaultPlan {
        close_after_sends: Some(2),
        ..FaultPlan::clean(cfg.seed)
    };
    let mut hostile = FaultTransport::new(server_end, plan);
    let outcome = serve_durable(
        &service,
        &mut hostile,
        window,
        Durability::LogSnapshot {
            wal: &mut wal,
            sync_every: 8,
            snapshot_every: 16,
        },
    );
    drop(hostile);
    match outcome {
        Err(ServerError::Io(_)) => {}
        other => {
            return Err(ServerError::Protocol(format!(
                "recover: the injected close must kill the server mid-stream, got {other:?}"
            )))
        }
    }
    // The replies that escaped before the close (at most two) must still
    // verify in order; anything owed after them died with the server.
    let mut queue: VecDeque<Expect> = events.iter().map(|e| Expect::for_event(e, false)).collect();
    loop {
        match client_end.recv() {
            Ok(Some(frame)) => {
                if let Ok(ack) = decode_ack(&frame) {
                    let want = queue.pop_front().ok_or_else(|| {
                        ServerError::Protocol("recover: more acks than events".into())
                    })?;
                    match (ack.status, want) {
                        (ACK_DONE, Expect::Done(reply)) if ack.reply == reply => {}
                        (status, want) => {
                            return Err(ServerError::Protocol(format!(
                                "recover: escaped ack mismatch: status {status}, reply {:?}, \
                                 expected {want:?}",
                                ack.reply
                            )))
                        }
                    }
                } else {
                    // A short stream drains its acks at the first aggregate
                    // request, so an aggregate reply may escape instead.
                    decode_aggregate_reply(&frame)?;
                }
            }
            Ok(None) => break,
            Err(e) => return Err(ServerError::Io(e)),
        }
    }

    // Cut the image at a seeded byte inside the unsynced tail: never behind
    // the last sync point (everything up to it is durable), possibly in the
    // middle of a record (a torn write the scan must truncate).
    let mut rng = DetRng::stream(cfg.seed, RECOVER_STREAM);
    let tail = wal.bytes() - wal.synced_bytes();
    let cut = wal.synced_bytes() + rng.next_below(tail + 1);
    let image = WalFaultPlan {
        cut_at: Some(cut),
        flip: None,
    }
    .apply(&sink.image());
    let recovery = scan_bytes(&image);
    if recovery.blocks != cfg.blocks
        || recovery.total_events < wal.synced_events()
        || recovery.total_events > wal.events()
    {
        return Err(ServerError::Protocol(format!(
            "recover: scan kept {} events of {} appended ({} synced), header blocks {}",
            recovery.total_events,
            wal.events(),
            wal.synced_events(),
            recovery.blocks,
        )));
    }
    let recovered = replay(&recovery, executor)?;
    let full = replay(&scan_bytes_full(&image), executor)?;
    if recovered != full {
        return Err(ServerError::Protocol(
            "recover: snapshot+suffix replay diverged from full-log replay".into(),
        ));
    }
    let prefix = &events[..recovery.total_events as usize];
    let reference = reference_aggregate(prefix.iter(), cfg.blocks);
    expect_reference(cfg.scenario, &recovered, &reference)?;
    Ok(ChaosReport {
        scenario: cfg.scenario.name(),
        frames_sent,
        handled: recovered.events,
        completed: recovered.completed,
        panicked: 0,
        protocol_errors: 0,
        io_errors: 1,
        disconnects: 0,
        aggregate: recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_core::executor::{build_executor, ExecutorSpec};

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let zipf = Zipf::new(64, 1.2);
        let mut rng = DetRng::stream(7, 1);
        let mut hits = [0u64; 64];
        for _ in 0..20_000 {
            hits[zipf.sample(&mut rng) as usize] += 1;
        }
        assert!(
            hits[0] > hits[10] && hits[10] > 0,
            "rank 0 ({}) should dominate rank 10 ({})",
            hits[0],
            hits[10]
        );
        // s = 0 degenerates to uniform-ish: rank 0 no longer dominates 8x.
        let flat = Zipf::new(64, 0.0);
        let mut rng = DetRng::stream(7, 2);
        let mut hits = [0u64; 64];
        for _ in 0..20_000 {
            hits[flat.sample(&mut rng) as usize] += 1;
        }
        assert!(hits[0] < hits[32] * 3, "s=0 should be near uniform");
    }

    #[test]
    fn fault_plan_actions_are_pure_and_seeded() {
        let plan = FaultPlan {
            seed: 42,
            corrupt_rate: 0.3,
            truncate_rate: 0.3,
            close_after_sends: Some(5),
            fail_recv_after: None,
        };
        let payload = vec![0xAAu8; 40];
        for i in 0..5 {
            assert_eq!(plan.action(i, &payload), plan.action(i, &payload));
            match plan.action(i, &payload) {
                FaultAction::Deliver => {}
                FaultAction::Mutate(m) => {
                    assert!(m.len() <= payload.len());
                    assert_ne!(m, payload);
                }
                FaultAction::Close => panic!("close before close_after_sends"),
            }
        }
        assert_eq!(plan.action(5, &payload), FaultAction::Close);
        assert_eq!(plan.action(9, &payload), FaultAction::Close);
    }

    #[test]
    fn fault_transport_stays_dead_after_close() {
        let (client_end, _server_end) = loopback_pair();
        let plan = FaultPlan {
            close_after_sends: Some(0),
            ..FaultPlan::clean(1)
        };
        let mut t = FaultTransport::new(client_end, plan);
        assert_eq!(
            t.send(b"x").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(t.send(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(t.recv().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(t.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn every_scenario_survives_on_one_executor() {
        let mut pool =
            build_executor("sharded-pdq", &ExecutorSpec::new(2).capacity(64)).expect("builds");
        for scenario in Scenario::ALL {
            let cfg = ChaosConfig::quick(scenario);
            let report = run_chaos(&*pool, &cfg).unwrap_or_else(|e| {
                panic!("scenario {} failed: {e}", scenario.name());
            });
            assert_eq!(report.scenario, scenario.name());
            assert!(
                report.handled > 0,
                "{}: nothing dispatched",
                report.scenario
            );
            let json = report.to_json_string();
            assert!(json.contains(&format!("\"scenario\": \"{}\"", scenario.name())));
            assert!(json.contains("\"block_checksum\""));
        }
        pool.shutdown();
    }
}
