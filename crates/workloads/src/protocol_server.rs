//! A network-server style workload over the executor trait: a deterministic
//! stream of fine-grain DSM protocol events (the `pdq-dsm` message types)
//! driven through any [`Executor`] via the async submission frontend.
//!
//! This is the shape of workload the paper's abstraction targets — a server
//! receiving a firehose of tiny protocol messages, each handled by a
//! fine-grain handler keyed by the cache block it touches — recast as a
//! runtime workload instead of a simulation: handlers actually execute on
//! executor worker threads, submissions flow through `submit_async` against
//! a bounded queue (so a slow executor exerts backpressure on the intake
//! loop), and the per-block server state is mutated without any lock beyond
//! the per-block cell that Rust requires.
//!
//! Every handler effect is *commutative* (counters and order-independent
//! checksums), so the final [`ServerAggregate`] depends only on the event
//! multiset — not on scheduling. That makes the aggregate byte-identical
//! across all four executors, which CI exploits: the `protocol_server`
//! example runs the same stream on every executor and diffs the JSON.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use pdq_core::executor::{block_on, Executor, ExecutorExt, JobStatus, SubmitFuture};
use pdq_dsm::{BlockAddr, Message, PageAddr, ProtocolEvent, Request};
use pdq_sim::DetRng;

/// Why a protocol-server run could not produce an aggregate.
///
/// Shared by the in-process driver ([`run_server`]) and the transport-backed
/// service layer ([`serve`](crate::serve) / [`run_client`](crate::run_client)).
#[derive(Debug)]
pub enum ServerError {
    /// The executor shut down while events were still in flight, so part of
    /// the stream was dropped unprocessed.
    Shutdown,
    /// A transport or I/O failure (transport-backed runs only).
    Io(std::io::Error),
    /// A malformed, unexpected, or mismatching frame (transport-backed runs
    /// only).
    Protocol(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Shutdown => {
                f.write_str("executor shut down while protocol events were in flight")
            }
            ServerError::Io(e) => write!(f, "transport failure: {e}"),
            ServerError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<pdq_core::ShutdownError> for ServerError {
    fn from(_: pdq_core::ShutdownError) -> Self {
        ServerError::Shutdown
    }
}

/// Configuration of a protocol-server run: the event stream is a pure
/// function of this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of nodes that appear as message sources/requesters.
    pub nodes: usize,
    /// Number of distinct cache blocks (synchronization keys).
    pub blocks: u64,
    /// Number of events in the stream.
    pub events: usize,
    /// Workload generation seed.
    pub seed: u64,
}

impl ServerConfig {
    /// A small default configuration: 8 nodes, 64 blocks, 20 000 events.
    pub fn new() -> Self {
        Self {
            nodes: 8,
            blocks: 64,
            events: 20_000,
            seed: 0x5eed_cafe,
        }
    }

    /// A test-sized configuration (2 000 events).
    pub fn quick() -> Self {
        Self {
            events: 2_000,
            ..Self::new()
        }
    }

    /// Replaces the event count, keeping everything else.
    #[must_use]
    pub fn events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Replaces the seed, keeping everything else.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Generates the deterministic protocol-event stream for `cfg`: a skewed mix
/// of access faults, incoming coherence messages of every kind, and the
/// occasional `Sequential`-keyed page operation. Roughly 70% of block
/// references land on a hot eighth of the blocks, so same-key conflicts are
/// frequent — the regime where dispatch-time synchronization matters.
pub fn generate_events(cfg: &ServerConfig) -> Vec<ProtocolEvent> {
    let mut rng = DetRng::stream(cfg.seed, 0x70c0_5e1f);
    let blocks = cfg.blocks.max(1);
    let hot = (blocks / 8).max(1);
    let nodes = cfg.nodes.max(1) as u64;
    let mut events = Vec::with_capacity(cfg.events);
    for i in 0..cfg.events {
        let block = BlockAddr(if rng.chance(0.7) {
            rng.next_below(hot)
        } else {
            rng.next_below(blocks)
        });
        let kind = rng.weighted_index(&[0.50, 0.45, 0.05]);
        let event = match kind {
            0 => ProtocolEvent::AccessFault {
                block,
                write: rng.chance(0.4),
                token: i as u64,
            },
            1 => {
                let src = rng.next_below(nodes) as usize;
                let home = rng.next_below(nodes) as usize;
                let value = rng.next_below(1 << 16);
                let msg = match rng.next_below(10) {
                    0 => Message::Req {
                        request: Request::GetShared,
                        requester: src,
                        block,
                    },
                    1 => Message::Req {
                        request: Request::GetExclusive,
                        requester: src,
                        block,
                    },
                    2 => Message::Invalidate { block, home },
                    3 => Message::InvalAck { block, from: src },
                    4 => Message::RecallShared { block, home },
                    5 => Message::RecallExclusive { block, home },
                    6 => Message::WritebackShared {
                        block,
                        from: src,
                        value,
                    },
                    7 => Message::WritebackExclusive {
                        block,
                        from: src,
                        value,
                    },
                    8 => Message::DataShared { block, value },
                    _ => Message::DataExclusive { block, value },
                };
                ProtocolEvent::Incoming { src, msg }
            }
            _ => ProtocolEvent::PageOp {
                page: PageAddr(rng.next_below(blocks / 16 + 1)),
            },
        };
        events.push(event);
    }
    events
}

/// Per-block server counters, protected by the block's synchronization key:
/// handlers for the same block never run concurrently, so the inner mutex is
/// never contended (it exists because safe Rust requires one).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct BlockCounters {
    faults: u64,
    write_faults: u64,
    requests: u64,
    invalidations: u64,
    acks: u64,
    recalls: u64,
    writebacks: u64,
    grants: u64,
    /// Commutative value accumulator (wrapping sums of tokens and message
    /// values), so the final value is order-independent.
    value: u64,
}

/// Counter words exported per block by [`ServerState::snapshot_words`].
pub const BLOCK_SNAPSHOT_WORDS: usize = 9;

/// Shared state of the protocol server: one counter cell per block plus
/// global accumulators for `Sequential` page operations.
#[derive(Debug)]
pub struct ServerState {
    blocks: Vec<Mutex<BlockCounters>>,
    page_ops: AtomicU64,
    /// XOR of page addresses seen by page operations: commutative, so it is
    /// identical for any execution order.
    page_checksum: AtomicU64,
}

impl ServerState {
    /// Creates empty state for `blocks` cache blocks.
    pub fn new(blocks: u64) -> Self {
        Self {
            blocks: (0..blocks.max(1)).map(|_| Mutex::default()).collect(),
            page_ops: AtomicU64::new(0),
            page_checksum: AtomicU64::new(0),
        }
    }

    /// The handler body for one event. Runs on an executor worker under the
    /// event's synchronization key; every effect is commutative.
    pub fn handle(&self, event: &ProtocolEvent) {
        match *event {
            ProtocolEvent::AccessFault {
                block,
                write,
                token,
            } => {
                let mut c = self.cell(block);
                c.faults += 1;
                if write {
                    c.write_faults += 1;
                }
                c.value = c.value.wrapping_add(token);
            }
            ProtocolEvent::Incoming { msg, .. } => {
                let mut c = self.cell(msg.block());
                match msg {
                    Message::Req { .. } => c.requests += 1,
                    Message::Invalidate { .. } => c.invalidations += 1,
                    Message::InvalAck { .. } => c.acks += 1,
                    Message::RecallShared { .. } | Message::RecallExclusive { .. } => {
                        c.recalls += 1
                    }
                    Message::WritebackShared { value, .. }
                    | Message::WritebackExclusive { value, .. } => {
                        c.writebacks += 1;
                        c.value = c.value.wrapping_add(value);
                    }
                    Message::DataShared { value, .. } | Message::DataExclusive { value, .. } => {
                        c.grants += 1;
                        c.value = c.value.wrapping_add(value);
                    }
                }
            }
            ProtocolEvent::PageOp { page } => {
                self.page_ops.fetch_add(1, Ordering::Relaxed);
                // page + 1 so that page 0 still perturbs the checksum.
                self.page_checksum.fetch_xor(
                    (page.0 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    Ordering::Relaxed,
                );
            }
        }
    }

    fn cell(&self, block: BlockAddr) -> std::sync::MutexGuard<'_, BlockCounters> {
        let idx = (block.0 % self.blocks.len() as u64) as usize;
        // A panicking handler (contained by the executor) may have poisoned
        // the cell; the counters are plain integers that are always in a
        // consistent state, so recover the guard instead of cascading the
        // panic into every later handler for this block.
        self.blocks[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Exports the full counter state as a flat word vector for the
    /// write-ahead log's snapshot records ([`crate::wal`]): the block count,
    /// then [`BLOCK_SNAPSHOT_WORDS`] counters per block in block order, then
    /// the two page accumulators. [`ServerState::from_snapshot_words`] is
    /// the exact inverse.
    pub fn snapshot_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(1 + self.blocks.len() * BLOCK_SNAPSHOT_WORDS + 2);
        words.push(self.blocks.len() as u64);
        for cell in &self.blocks {
            let c = *cell.lock().unwrap_or_else(PoisonError::into_inner);
            words.extend_from_slice(&[
                c.faults,
                c.write_faults,
                c.requests,
                c.invalidations,
                c.acks,
                c.recalls,
                c.writebacks,
                c.grants,
                c.value,
            ]);
        }
        words.push(self.page_ops.load(Ordering::Relaxed));
        words.push(self.page_checksum.load(Ordering::Relaxed));
        words
    }

    /// Restores a state from a [`ServerState::snapshot_words`] export.
    /// Returns `None` if the vector is not shaped like one (wrong length for
    /// its claimed block count, or zero blocks).
    pub fn from_snapshot_words(words: &[u64]) -> Option<Self> {
        let blocks = usize::try_from(*words.first()?).ok()?;
        if blocks == 0 || words.len() != 1 + blocks * BLOCK_SNAPSHOT_WORDS + 2 {
            return None;
        }
        let cells = (0..blocks)
            .map(|i| {
                let w = &words[1 + i * BLOCK_SNAPSHOT_WORDS..1 + (i + 1) * BLOCK_SNAPSHOT_WORDS];
                Mutex::new(BlockCounters {
                    faults: w[0],
                    write_faults: w[1],
                    requests: w[2],
                    invalidations: w[3],
                    acks: w[4],
                    recalls: w[5],
                    writebacks: w[6],
                    grants: w[7],
                    value: w[8],
                })
            })
            .collect();
        Some(Self {
            blocks: cells,
            page_ops: AtomicU64::new(words[words.len() - 2]),
            page_checksum: AtomicU64::new(words[words.len() - 1]),
        })
    }

    /// Folds the per-block state into the order-independent aggregate.
    pub fn aggregate(&self, completed: u64) -> ServerAggregate {
        let mut agg = ServerAggregate {
            completed,
            page_ops: self.page_ops.load(Ordering::Relaxed),
            page_checksum: self.page_checksum.load(Ordering::Relaxed),
            ..ServerAggregate::default()
        };
        let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for cell in &self.blocks {
            let c = *cell.lock().unwrap_or_else(PoisonError::into_inner);
            agg.faults += c.faults;
            agg.write_faults += c.write_faults;
            agg.requests += c.requests;
            agg.invalidations += c.invalidations;
            agg.acks += c.acks;
            agg.recalls += c.recalls;
            agg.writebacks += c.writebacks;
            agg.grants += c.grants;
            for word in [
                c.faults,
                c.write_faults,
                c.requests,
                c.invalidations,
                c.acks,
                c.recalls,
                c.writebacks,
                c.grants,
                c.value,
            ] {
                checksum ^= word;
                checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
            }
        }
        agg.events = agg.faults
            + agg.requests
            + agg.invalidations
            + agg.acks
            + agg.recalls
            + agg.writebacks
            + agg.grants
            + agg.page_ops;
        agg.block_checksum = checksum;
        agg
    }
}

/// Folds `events` through a fresh [`ServerState`] sequentially on the
/// calling thread and returns the aggregate, with `completed` set to the
/// number of events folded.
///
/// This is the sequential reference the adversarial harness
/// ([`chaos`](crate::chaos)) and the property tests compare executor-driven
/// aggregates against: because every handler effect is commutative, any
/// executor that dispatches exactly this multiset of events — in any order,
/// on any number of workers — must produce this exact aggregate.
pub fn reference_aggregate<'a, I>(events: I, blocks: u64) -> ServerAggregate
where
    I: IntoIterator<Item = &'a ProtocolEvent>,
{
    let state = ServerState::new(blocks);
    let mut completed = 0u64;
    for event in events {
        state.handle(event);
        completed += 1;
    }
    state.aggregate(completed)
}

/// Executor-independent result of a protocol-server run: pure event
/// accounting plus order-independent checksums over the final server state.
/// Two runs of the same [`ServerConfig`] produce identical aggregates on any
/// executor that honours the key contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerAggregate {
    /// Total events handled.
    pub events: u64,
    /// Access-fault events.
    pub faults: u64,
    /// Access faults that were writes.
    pub write_faults: u64,
    /// Incoming coherence requests.
    pub requests: u64,
    /// Incoming invalidations.
    pub invalidations: u64,
    /// Incoming invalidation acknowledgements.
    pub acks: u64,
    /// Incoming recalls (shared or exclusive).
    pub recalls: u64,
    /// Incoming writebacks (shared or exclusive).
    pub writebacks: u64,
    /// Incoming data grants (shared or exclusive).
    pub grants: u64,
    /// `Sequential`-keyed page operations.
    pub page_ops: u64,
    /// FNV fold of every block's final counters, in block order.
    pub block_checksum: u64,
    /// XOR fold of the pages touched by page operations.
    pub page_checksum: u64,
    /// Submissions whose futures resolved as successfully completed.
    pub completed: u64,
}

impl ServerAggregate {
    /// Renders the aggregate as a small text table.
    pub fn render(&self) -> String {
        format!(
            "events          {:>12}\n\
             faults          {:>12}  (writes {})\n\
             requests        {:>12}\n\
             invalidations   {:>12}  (acks {})\n\
             recalls         {:>12}\n\
             writebacks      {:>12}\n\
             grants          {:>12}\n\
             page_ops        {:>12}\n\
             completed       {:>12}\n\
             block_checksum  {:>#18x}\n\
             page_checksum   {:>#18x}\n",
            self.events,
            self.faults,
            self.write_faults,
            self.requests,
            self.invalidations,
            self.acks,
            self.recalls,
            self.writebacks,
            self.grants,
            self.page_ops,
            self.completed,
            self.block_checksum,
            self.page_checksum,
        )
    }

    /// The aggregate as a JSON document with a stable field order, so equal
    /// aggregates render byte-identically (CI diffs these files across
    /// executors).
    pub fn to_json_string(&self) -> String {
        format!(
            "{{\n  \"events\": {},\n  \"faults\": {},\n  \"write_faults\": {},\n  \
             \"requests\": {},\n  \"invalidations\": {},\n  \"acks\": {},\n  \
             \"recalls\": {},\n  \"writebacks\": {},\n  \"grants\": {},\n  \
             \"page_ops\": {},\n  \"block_checksum\": {},\n  \"page_checksum\": {},\n  \
             \"completed\": {}\n}}\n",
            self.events,
            self.faults,
            self.write_faults,
            self.requests,
            self.invalidations,
            self.acks,
            self.recalls,
            self.writebacks,
            self.grants,
            self.page_ops,
            self.block_checksum,
            self.page_checksum,
            self.completed,
        )
    }
}

/// Drives the event stream of `cfg` through `executor` with at most `window`
/// submissions in flight, using the async frontend: each event becomes a
/// `submit_async` future keyed by the event's block (page operations use the
/// `Sequential` key), and the intake loop awaits the oldest future whenever
/// the window is full — so a bounded executor queue pushes back on intake
/// instead of buffering without limit.
///
/// # Errors
///
/// [`ServerError::Shutdown`] if the executor shuts down while events are in
/// flight (a submission is refused or an admitted event is dropped
/// undispatched) — previously a panic deep in the drain loop. A *panicking
/// handler* is not an error: its event simply does not count as completed.
pub fn run_server(
    executor: &dyn Executor,
    cfg: &ServerConfig,
    window: usize,
) -> Result<ServerAggregate, ServerError> {
    let window = window.max(1);
    let state = Arc::new(ServerState::new(cfg.blocks));
    let mut pending: VecDeque<SubmitFuture> = VecDeque::with_capacity(window);
    let mut completed = 0u64;
    let drain = |fut: SubmitFuture, completed: &mut u64| -> Result<(), ServerError> {
        match block_on(fut) {
            Ok(JobStatus::Done) => {
                *completed += 1;
                Ok(())
            }
            Ok(JobStatus::Panicked) => Ok(()),
            Ok(JobStatus::Aborted) | Err(_) => Err(ServerError::Shutdown),
        }
    };
    for event in generate_events(cfg) {
        let state = Arc::clone(&state);
        let fut = executor.submit_async(event.sync_key(), move || state.handle(&event));
        pending.push_back(fut);
        if pending.len() >= window {
            if let Some(fut) = pending.pop_front() {
                drain(fut, &mut completed)?;
            }
        }
    }
    for fut in pending {
        drain(fut, &mut completed)?;
    }
    executor.flush();
    Ok(state.aggregate(completed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdq_core::executor::{build_executor, ExecutorSpec, EXECUTOR_NAMES};

    #[test]
    fn event_stream_is_deterministic_and_mixed() {
        let cfg = ServerConfig::quick();
        let a = generate_events(&cfg);
        let b = generate_events(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.events);
        let faults = a
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::AccessFault { .. }))
            .count();
        let pages = a
            .iter()
            .filter(|e| matches!(e, ProtocolEvent::PageOp { .. }))
            .count();
        assert!(faults > 0 && pages > 0, "stream should mix event kinds");
        // A different seed produces a different stream.
        assert_ne!(generate_events(&cfg.seed(1)), a);
    }

    #[test]
    fn aggregates_are_byte_identical_across_all_executors() {
        let cfg = ServerConfig::quick();
        let mut reference: Option<ServerAggregate> = None;
        for name in EXECUTOR_NAMES {
            let mut pool = build_executor(name, &ExecutorSpec::new(4).capacity(32))
                .expect("registry name builds");
            let aggregate = run_server(&*pool, &cfg, 64).expect("pool is running");
            assert_eq!(aggregate.events, cfg.events as u64, "{name} lost events");
            assert_eq!(
                aggregate.completed, cfg.events as u64,
                "{name} futures did not all resolve Done"
            );
            match &reference {
                None => reference = Some(aggregate),
                Some(r) => {
                    assert_eq!(&aggregate, r, "{name} aggregate diverged");
                    assert_eq!(
                        aggregate.to_json_string(),
                        r.to_json_string(),
                        "{name} JSON diverged"
                    );
                }
            }
            pool.shutdown();
        }
    }

    #[test]
    fn executor_runs_match_the_sequential_reference_fold() {
        let cfg = ServerConfig::quick();
        let events = generate_events(&cfg);
        let reference = reference_aggregate(events.iter(), cfg.blocks);
        let pool = build_executor("pdq", &ExecutorSpec::new(4).capacity(32)).expect("pdq builds");
        let aggregate = run_server(&*pool, &cfg, 64).expect("pool is running");
        assert_eq!(aggregate, reference);
    }

    #[test]
    fn run_server_reports_shutdown_as_an_error_not_a_panic() {
        let mut pool = build_executor("pdq", &ExecutorSpec::new(1)).expect("pdq builds");
        pool.shutdown();
        let outcome = run_server(&*pool, &ServerConfig::quick().events(10), 4);
        assert!(matches!(outcome, Err(ServerError::Shutdown)));
        let err = outcome.unwrap_err();
        assert!(err.to_string().contains("shut down"));
    }

    #[test]
    fn snapshot_words_roundtrip_exactly() {
        let cfg = ServerConfig::quick().events(500);
        let state = ServerState::new(cfg.blocks);
        let mut handled = 0u64;
        for event in generate_events(&cfg) {
            state.handle(&event);
            handled += 1;
        }
        let words = state.snapshot_words();
        assert_eq!(
            words.len(),
            1 + cfg.blocks as usize * BLOCK_SNAPSHOT_WORDS + 2
        );
        let restored = ServerState::from_snapshot_words(&words).expect("valid export");
        assert_eq!(restored.aggregate(handled), state.aggregate(handled));
        assert_eq!(restored.snapshot_words(), words);
        // Malformed exports are rejected, not misread.
        assert!(ServerState::from_snapshot_words(&[]).is_none());
        assert!(ServerState::from_snapshot_words(&[0]).is_none());
        assert!(ServerState::from_snapshot_words(&words[..words.len() - 1]).is_none());
    }

    #[test]
    fn aggregate_renders_text_and_json() {
        let cfg = ServerConfig::quick().events(500);
        let pool = build_executor("pdq", &ExecutorSpec::new(2)).expect("pdq builds");
        let aggregate = run_server(&*pool, &cfg, 16).expect("pool is running");
        let text = aggregate.render();
        assert!(text.contains("events"));
        assert!(text.contains("block_checksum"));
        let json = aggregate.to_json_string();
        assert!(json.contains("\"events\": 500"));
        assert!(json.contains("\"page_checksum\""));
    }
}
