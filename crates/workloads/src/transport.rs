//! Framed byte transports for the protocol service.
//!
//! The wire unit is a **frame**: a little-endian `u32` length prefix followed
//! by that many payload bytes. Framing is the only thing this module knows —
//! what the bytes mean is the service layer's business
//! ([`service`](crate::service)) — so the same codec carries requests one way
//! and replies the other over any byte stream.
//!
//! Two transports are provided:
//!
//! * [`loopback_pair`] — an in-process pair of connected endpoints backed by
//!   unbounded channels, for tests and for running client and server in one
//!   process without sockets;
//! * [`TcpTransport`] — a framed [`std::net::TcpStream`], the real network
//!   path (`examples/protocol_server.rs --transport tcp`).
//!
//! Both implement [`Transport`], so the server loop and client driver are
//! written once against the trait.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Upper bound on an accepted frame payload (16 MiB). A corrupt or hostile
/// length prefix fails fast instead of provoking a giant allocation.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Writes one length-prefixed frame. The payload must not exceed
/// [`MAX_FRAME_LEN`].
///
/// # Errors
///
/// Propagates I/O errors from `w`; an oversized payload is
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Granularity of payload reads: the buffer grows by at most this much per
/// `read_exact`, so a hostile length prefix pins memory proportional to the
/// bytes actually delivered, not to the (up to 16 MiB) claim.
const READ_CHUNK: usize = 64 * 1024;

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean end of
/// stream (EOF exactly on a frame boundary).
///
/// The length prefix is validated against [`MAX_FRAME_LEN`] **before** any
/// payload allocation, and the payload buffer grows incrementally (64 KiB
/// steps) as bytes arrive — a peer that promises 16 MiB and delivers 10
/// bytes costs one small allocation and a typed error, not 16 MiB of zeroed
/// memory.
///
/// # Errors
///
/// EOF in the middle of a frame is [`io::ErrorKind::UnexpectedEof`]; a length
/// prefix above [`MAX_FRAME_LEN`] is [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let start = payload.len();
        let step = READ_CHUNK.min(len - start);
        payload.resize(start + step, 0);
        if let Err(e) = r.read_exact(&mut payload[start..]) {
            return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended inside a frame payload ({start}+ of {len} bytes)"),
                )
            } else {
                e
            });
        }
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Resumable (non-blocking) frame codec
// ---------------------------------------------------------------------------

/// Soft cap on bytes staged inside a [`FrameDecoder`] per
/// [`fill_from`](FrameDecoder::fill_from) pass (256 KiB). A peer that keeps
/// the socket readable forever (an open-loop firehose) cannot make one fill
/// pass buffer without bound: the pass returns once the cap is reached and
/// the caller drains decoded frames before reading again.
pub const DECODER_SOFT_CAP: usize = 256 * 1024;

/// Outcome of one [`FrameDecoder::fill_from`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillStatus {
    /// Bytes moved from the reader into the staging buffer.
    pub read: usize,
    /// Whether the reader reported end of stream.
    pub eof: bool,
}

/// Staged, resumable frame *decoder* for non-blocking streams.
///
/// [`read_frame`] blocks until a whole frame has arrived, which is exactly
/// wrong for a readiness-polled event loop: a connection may deliver half a
/// length prefix now and the rest three wakeups later. `FrameDecoder` keeps
/// the partial bytes staged across calls instead — feed it whatever the
/// socket has ([`fill_from`](Self::fill_from) reads until `WouldBlock`, EOF,
/// or the [`DECODER_SOFT_CAP`]), then drain every already-complete frame with
/// [`next_frame`](Self::next_frame). The decode state machine (inside the
/// length prefix / inside the payload) is implicit in the staged byte count,
/// so resumption is trivially correct for any chunking of the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    head: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes staged but not yet consumed by [`next_frame`](Self::next_frame).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether the staging buffer ends inside an unfinished frame — at EOF
    /// this distinguishes a clean close (frame boundary) from a truncated
    /// stream.
    pub fn has_partial(&self) -> bool {
        self.buffered() > 0
    }

    /// Reads from `r` until it would block, the stream ends, or
    /// [`DECODER_SOFT_CAP`] bytes are staged. `Interrupted` reads are
    /// retried; `WouldBlock` ends the pass without error (that is the normal
    /// "socket drained" outcome on a non-blocking stream).
    ///
    /// # Errors
    ///
    /// Any I/O failure other than `WouldBlock`/`Interrupted`.
    pub fn fill_from<R: Read + ?Sized>(&mut self, r: &mut R) -> io::Result<FillStatus> {
        let mut status = FillStatus {
            read: 0,
            eof: false,
        };
        let mut chunk = [0u8; 8192];
        while self.buffered() < DECODER_SOFT_CAP {
            match r.read(&mut chunk) {
                Ok(0) => {
                    status.eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    status.read += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(status)
    }

    /// Pops the next complete frame out of the staging buffer, or `None` if
    /// the staged bytes end mid-frame (feed more bytes and call again).
    ///
    /// # Errors
    ///
    /// A staged length prefix above [`MAX_FRAME_LEN`] is
    /// [`io::ErrorKind::InvalidData`] — validated before any payload
    /// allocation, exactly like [`read_frame`].
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&self.buf[self.head..self.head + 4]);
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds MAX_FRAME_LEN"),
            ));
        }
        let len = len as usize;
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let start = self.head + 4;
        let payload = self.buf[start..start + len].to_vec();
        self.head = start + len;
        // Reclaim consumed prefix space once it dominates the buffer, so a
        // long-lived connection does not grow its staging buffer forever.
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= 64 * 1024 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        Ok(Some(payload))
    }
}

/// Staged, resumable frame *encoder* for non-blocking streams.
///
/// The mirror of [`FrameDecoder`]: [`push_frame`](Self::push_frame) stages a
/// length-prefixed frame in an outgoing byte buffer, and
/// [`write_to`](Self::write_to) pushes as much of the staged backlog as the
/// stream accepts, stopping cleanly at `WouldBlock` — a partial write leaves
/// the unsent suffix staged, and the next call resumes mid-frame. The staged
/// byte count ([`staged`](Self::staged)) is the server's per-connection
/// outgoing backlog, which the poll loop bounds by dropping read interest
/// when a peer stops draining its replies.
#[derive(Debug, Default)]
pub struct FrameEncoder {
    buf: Vec<u8>,
    head: usize,
}

impl FrameEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes staged and not yet accepted by the stream.
    pub fn staged(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether every staged byte has been written.
    pub fn is_empty(&self) -> bool {
        self.staged() == 0
    }

    /// Stages one length-prefixed frame for writing.
    ///
    /// # Errors
    ///
    /// An oversized payload is [`io::ErrorKind::InvalidInput`] and stages
    /// nothing.
    pub fn push_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&len| len <= MAX_FRAME_LEN)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                        payload.len()
                    ),
                )
            })?;
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(payload);
        Ok(())
    }

    /// Writes staged bytes to `w` until the backlog drains or the stream
    /// would block; returns how many bytes were accepted. `Interrupted`
    /// writes are retried; `WouldBlock` ends the pass without error.
    ///
    /// # Errors
    ///
    /// Any other I/O failure; a stream accepting zero bytes is
    /// [`io::ErrorKind::WriteZero`].
    pub fn write_to<W: Write + ?Sized>(&mut self, w: &mut W) -> io::Result<usize> {
        let mut written = 0;
        while self.staged() > 0 {
            match w.write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes of a staged frame",
                    ))
                }
                Ok(n) => {
                    self.head += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= 64 * 1024 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        Ok(written)
    }
}

/// One endpoint of a bidirectional framed byte stream.
///
/// `send`/`recv` move whole frame payloads; `flush` pushes buffered frames to
/// the peer (a no-op for unbuffered transports). Implementations are half
/// duplex per endpoint object: one thread drives an endpoint at a time, and a
/// connection's two endpoints (client side, server side) live on different
/// threads or processes.
pub trait Transport: Send {
    /// Sends one frame with the given payload.
    ///
    /// # Errors
    ///
    /// Any I/O failure of the underlying stream; a disconnected peer is
    /// [`io::ErrorKind::BrokenPipe`].
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Receives the next frame payload; `Ok(None)` means the peer closed the
    /// stream cleanly.
    ///
    /// # Errors
    ///
    /// Any I/O failure of the underlying stream, including a mid-frame EOF.
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>>;

    /// Flushes buffered frames to the peer.
    ///
    /// # Errors
    ///
    /// Any I/O failure of the underlying stream.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// In-process transport endpoint: frames travel through unbounded channels,
/// so sends never block and never deadlock regardless of windowing.
#[derive(Debug)]
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-process endpoints: frames sent on one are
/// received by the other, in order. Dropping an endpoint closes its sending
/// direction (the peer's `recv` returns `Ok(None)`).
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        LoopbackTransport { tx: a_tx, rx: a_rx },
        LoopbackTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "loopback peer disconnected"))
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.rx.recv().ok())
    }
}

/// A framed TCP stream: the transport used by the real protocol server.
///
/// Reads and writes are buffered; [`Transport::flush`] must be called after
/// the last frame of a burst that expects a response (the server loop and
/// client driver both do).
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Wraps a connected stream in buffered framed halves.
    ///
    /// # Errors
    ///
    /// Fails if the stream cannot be cloned for the second direction.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        let write_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        // Everything buffered for writing must be on the wire before this
        // side blocks waiting for the peer's answer.
        self.writer.flush()?;
        read_frame(&mut self.reader)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAB; 300]).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&[0xAB; 300][..])
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        // Cut inside the payload.
        let mut r = io::Cursor::new(&wire[..6]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Cut inside the length prefix.
        let mut r = io::Cursor::new(&wire[..2]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn hostile_length_claims_cost_only_the_delivered_bytes() {
        // A prefix that claims the full 16 MiB but delivers three bytes must
        // fail with a typed truncation error after allocating at most one
        // READ_CHUNK step, not the claimed size.
        let mut wire = MAX_FRAME_LEN.to_le_bytes().to_vec();
        wire.extend_from_slice(&[1, 2, 3]);
        let mut r = io::Cursor::new(wire);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("frame payload"));
        // A multi-chunk payload still roundtrips intact.
        let big = vec![0x5Au8; READ_CHUNK * 2 + 17];
        let mut wire = Vec::new();
        write_frame(&mut wire, &big).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&big[..]));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut r = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn the_exact_size_cap_roundtrips_and_one_byte_more_is_refused() {
        // Exact boundary: a payload of exactly MAX_FRAME_LEN bytes walks the
        // 64 KiB incremental-growth path 256 times and arrives intact.
        let big = vec![0xC3u8; MAX_FRAME_LEN as usize];
        let mut wire = Vec::with_capacity(big.len() + 4);
        write_frame(&mut wire, &big).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&big[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "exactly one frame");
        // Boundary + 1: the writer refuses before emitting a single byte, so
        // an oversized payload can never poison the stream for its peer.
        let over = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &over).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(
            wire.is_empty(),
            "a refused frame must leave no bytes behind"
        );
    }

    /// A reader that hands out its bytes in fixed chunks, interleaving a
    /// `WouldBlock` after every chunk — the shape of a non-blocking socket
    /// that dribbles data across readiness wakeups.
    struct DribbleReader {
        bytes: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Read for DribbleReader {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not ready"));
            }
            self.ready = false;
            let n = self.chunk.min(out.len()).min(self.bytes.len() - self.pos);
            out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_decoder_resumes_across_arbitrary_chunk_boundaries() {
        let payloads: Vec<Vec<u8>> = vec![b"hello".to_vec(), vec![], vec![0xAB; 300]];
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        // Every chunk size from one byte up must yield the same frames: the
        // decoder resumes inside the prefix and inside the payload alike.
        for chunk in 1..=9 {
            let mut reader = DribbleReader {
                bytes: wire.clone(),
                pos: 0,
                chunk,
                ready: false,
            };
            let mut decoder = FrameDecoder::new();
            let mut decoded: Vec<Vec<u8>> = Vec::new();
            loop {
                let status = decoder.fill_from(&mut reader).unwrap();
                while let Some(frame) = decoder.next_frame().unwrap() {
                    decoded.push(frame);
                }
                if status.eof {
                    break;
                }
            }
            assert_eq!(decoded, payloads, "chunk size {chunk}");
            assert!(!decoder.has_partial(), "clean EOF on a frame boundary");
        }
    }

    #[test]
    fn frame_decoder_flags_partial_frames_at_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire.truncate(6); // cut inside the payload
        let mut r = io::Cursor::new(wire);
        let mut decoder = FrameDecoder::new();
        let status = decoder.fill_from(&mut r).unwrap();
        assert!(status.eof);
        assert!(decoder.next_frame().unwrap().is_none());
        assert!(decoder.has_partial(), "EOF mid-frame must be detectable");
    }

    #[test]
    fn frame_decoder_rejects_oversized_prefixes_before_allocating() {
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut r = io::Cursor::new(wire);
        let mut decoder = FrameDecoder::new();
        decoder.fill_from(&mut r).unwrap();
        assert_eq!(
            decoder.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    /// A writer that accepts at most `window` bytes per call and interleaves
    /// a `WouldBlock` after every accepted chunk — a non-blocking socket with
    /// a tiny send buffer.
    struct DribbleWriter {
        accepted: Vec<u8>,
        window: usize,
        ready: bool,
    }

    impl Write for DribbleWriter {
        fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.ready = false;
            let n = self.window.min(bytes.len());
            self.accepted.extend_from_slice(&bytes[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_encoder_resumes_partial_writes() {
        let payloads: Vec<Vec<u8>> = vec![b"abc".to_vec(), vec![0x5A; 200], vec![]];
        for window in 1..=7 {
            let mut encoder = FrameEncoder::new();
            for p in &payloads {
                encoder.push_frame(p).unwrap();
            }
            let mut expected = Vec::new();
            for p in &payloads {
                write_frame(&mut expected, p).unwrap();
            }
            assert_eq!(encoder.staged(), expected.len());
            let mut sink = DribbleWriter {
                accepted: Vec::new(),
                window,
                ready: false,
            };
            // Each write_to pass makes window bytes of progress (one accepted
            // chunk) and stops cleanly at the next WouldBlock.
            let mut passes = 0;
            while !encoder.is_empty() {
                encoder.write_to(&mut sink).unwrap();
                passes += 1;
                assert!(passes < 10_000, "encoder failed to make progress");
            }
            assert_eq!(sink.accepted, expected, "window {window}");
        }
    }

    #[test]
    fn frame_encoder_refuses_oversized_payloads_without_staging() {
        let mut encoder = FrameEncoder::new();
        let over = vec![0u8; MAX_FRAME_LEN as usize + 1];
        assert_eq!(
            encoder.push_frame(&over).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(encoder.is_empty(), "a refused frame must stage nothing");
    }

    #[test]
    fn loopback_pair_carries_frames_both_ways() {
        let (mut a, mut b) = loopback_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap().as_deref(), Some(&b"ping"[..]));
        b.send(b"pong").unwrap();
        b.send(b"pong2").unwrap();
        assert_eq!(a.recv().unwrap().as_deref(), Some(&b"pong"[..]));
        assert_eq!(a.recv().unwrap().as_deref(), Some(&b"pong2"[..]));
        drop(b);
        assert_eq!(a.recv().unwrap(), None);
        assert!(a.send(b"dead").is_err());
    }

    #[test]
    fn tcp_transport_roundtrips_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            while let Some(frame) = t.recv().unwrap() {
                let mut echoed = frame;
                echoed.reverse();
                t.send(&echoed).unwrap();
                t.flush().unwrap();
            }
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap();
        t.send(b"abc").unwrap();
        assert_eq!(t.recv().unwrap().as_deref(), Some(&b"cba"[..]));
        drop(t);
        server.join().unwrap();
    }
}
