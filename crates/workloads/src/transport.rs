//! Framed byte transports for the protocol service.
//!
//! The wire unit is a **frame**: a little-endian `u32` length prefix followed
//! by that many payload bytes. Framing is the only thing this module knows —
//! what the bytes mean is the service layer's business
//! ([`service`](crate::service)) — so the same codec carries requests one way
//! and replies the other over any byte stream.
//!
//! Two transports are provided:
//!
//! * [`loopback_pair`] — an in-process pair of connected endpoints backed by
//!   unbounded channels, for tests and for running client and server in one
//!   process without sockets;
//! * [`TcpTransport`] — a framed [`std::net::TcpStream`], the real network
//!   path (`examples/protocol_server.rs --transport tcp`).
//!
//! Both implement [`Transport`], so the server loop and client driver are
//! written once against the trait.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Upper bound on an accepted frame payload (16 MiB). A corrupt or hostile
/// length prefix fails fast instead of provoking a giant allocation.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Writes one length-prefixed frame. The payload must not exceed
/// [`MAX_FRAME_LEN`].
///
/// # Errors
///
/// Propagates I/O errors from `w`; an oversized payload is
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Granularity of payload reads: the buffer grows by at most this much per
/// `read_exact`, so a hostile length prefix pins memory proportional to the
/// bytes actually delivered, not to the (up to 16 MiB) claim.
const READ_CHUNK: usize = 64 * 1024;

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean end of
/// stream (EOF exactly on a frame boundary).
///
/// The length prefix is validated against [`MAX_FRAME_LEN`] **before** any
/// payload allocation, and the payload buffer grows incrementally (64 KiB
/// steps) as bytes arrive — a peer that promises 16 MiB and delivers 10
/// bytes costs one small allocation and a typed error, not 16 MiB of zeroed
/// memory.
///
/// # Errors
///
/// EOF in the middle of a frame is [`io::ErrorKind::UnexpectedEof`]; a length
/// prefix above [`MAX_FRAME_LEN`] is [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let start = payload.len();
        let step = READ_CHUNK.min(len - start);
        payload.resize(start + step, 0);
        if let Err(e) = r.read_exact(&mut payload[start..]) {
            return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended inside a frame payload ({start}+ of {len} bytes)"),
                )
            } else {
                e
            });
        }
    }
    Ok(Some(payload))
}

/// One endpoint of a bidirectional framed byte stream.
///
/// `send`/`recv` move whole frame payloads; `flush` pushes buffered frames to
/// the peer (a no-op for unbuffered transports). Implementations are half
/// duplex per endpoint object: one thread drives an endpoint at a time, and a
/// connection's two endpoints (client side, server side) live on different
/// threads or processes.
pub trait Transport: Send {
    /// Sends one frame with the given payload.
    ///
    /// # Errors
    ///
    /// Any I/O failure of the underlying stream; a disconnected peer is
    /// [`io::ErrorKind::BrokenPipe`].
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Receives the next frame payload; `Ok(None)` means the peer closed the
    /// stream cleanly.
    ///
    /// # Errors
    ///
    /// Any I/O failure of the underlying stream, including a mid-frame EOF.
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>>;

    /// Flushes buffered frames to the peer.
    ///
    /// # Errors
    ///
    /// Any I/O failure of the underlying stream.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// In-process transport endpoint: frames travel through unbounded channels,
/// so sends never block and never deadlock regardless of windowing.
#[derive(Debug)]
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-process endpoints: frames sent on one are
/// received by the other, in order. Dropping an endpoint closes its sending
/// direction (the peer's `recv` returns `Ok(None)`).
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        LoopbackTransport { tx: a_tx, rx: a_rx },
        LoopbackTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "loopback peer disconnected"))
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.rx.recv().ok())
    }
}

/// A framed TCP stream: the transport used by the real protocol server.
///
/// Reads and writes are buffered; [`Transport::flush`] must be called after
/// the last frame of a burst that expects a response (the server loop and
/// client driver both do).
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Wraps a connected stream in buffered framed halves.
    ///
    /// # Errors
    ///
    /// Fails if the stream cannot be cloned for the second direction.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        let write_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        // Everything buffered for writing must be on the wire before this
        // side blocks waiting for the peer's answer.
        self.writer.flush()?;
        read_frame(&mut self.reader)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAB; 300]).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&[0xAB; 300][..])
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        // Cut inside the payload.
        let mut r = io::Cursor::new(&wire[..6]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Cut inside the length prefix.
        let mut r = io::Cursor::new(&wire[..2]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn hostile_length_claims_cost_only_the_delivered_bytes() {
        // A prefix that claims the full 16 MiB but delivers three bytes must
        // fail with a typed truncation error after allocating at most one
        // READ_CHUNK step, not the claimed size.
        let mut wire = MAX_FRAME_LEN.to_le_bytes().to_vec();
        wire.extend_from_slice(&[1, 2, 3]);
        let mut r = io::Cursor::new(wire);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("frame payload"));
        // A multi-chunk payload still roundtrips intact.
        let big = vec![0x5Au8; READ_CHUNK * 2 + 17];
        let mut wire = Vec::new();
        write_frame(&mut wire, &big).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&big[..]));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut r = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn the_exact_size_cap_roundtrips_and_one_byte_more_is_refused() {
        // Exact boundary: a payload of exactly MAX_FRAME_LEN bytes walks the
        // 64 KiB incremental-growth path 256 times and arrives intact.
        let big = vec![0xC3u8; MAX_FRAME_LEN as usize];
        let mut wire = Vec::with_capacity(big.len() + 4);
        write_frame(&mut wire, &big).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&big[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "exactly one frame");
        // Boundary + 1: the writer refuses before emitting a single byte, so
        // an oversized payload can never poison the stream for its peer.
        let over = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &over).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(
            wire.is_empty(),
            "a refused frame must leave no bytes behind"
        );
    }

    #[test]
    fn loopback_pair_carries_frames_both_ways() {
        let (mut a, mut b) = loopback_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap().as_deref(), Some(&b"ping"[..]));
        b.send(b"pong").unwrap();
        b.send(b"pong2").unwrap();
        assert_eq!(a.recv().unwrap().as_deref(), Some(&b"pong"[..]));
        assert_eq!(a.recv().unwrap().as_deref(), Some(&b"pong2"[..]));
        drop(b);
        assert_eq!(a.recv().unwrap(), None);
        assert!(a.send(b"dead").is_err());
    }

    #[test]
    fn tcp_transport_roundtrips_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            while let Some(frame) = t.recv().unwrap() {
                let mut echoed = frame;
                echoed.reverse();
                t.send(&echoed).unwrap();
                t.flush().unwrap();
            }
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap()).unwrap();
        t.send(b"abc").unwrap();
        assert_eq!(t.recv().unwrap().as_deref(), Some(&b"cba"[..]));
        drop(t);
        server.join().unwrap();
    }
}
