//! Synthetic per-processor access traces.
//!
//! The generator turns an application's [`AppParams`] into one script of
//! [`Action`]s per processor: compute bursts, shared-memory accesses (byte
//! addresses chosen according to the application's sharing pattern), and
//! barriers separating phases. Scripts are generated up front from a seeded
//! deterministic RNG, so a `(application, topology, scale, seed)` tuple always
//! produces exactly the same workload.
//!
//! Generation is a pure function of those four values and touches no shared
//! state, so the sweep engine in `pdq-bench` materializes each workload *on
//! the worker thread that simulates it* rather than in the driver — the
//! tuple is the job description, the trace never crosses a thread boundary,
//! and a parallel sweep reproduces the sequential one bit for bit.

use pdq_sim::DetRng;

use crate::app::{AppKind, AppParams, SharingPattern};

/// Bytes per page; must match `pdq_dsm::PAGE_BYTES` (asserted in the
/// integration tests) — kept as a literal here so this crate does not depend
/// on the DSM crate.
const PAGE_BYTES: u64 = 4096;

/// The shape of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of SMP nodes.
    pub nodes: usize,
    /// Compute processors per node.
    pub cpus_per_node: usize,
}

impl Topology {
    /// Creates a topology (both dimensions clamped to at least 1).
    pub fn new(nodes: usize, cpus_per_node: usize) -> Self {
        Self {
            nodes: nodes.max(1),
            cpus_per_node: cpus_per_node.max(1),
        }
    }

    /// Total number of compute processors.
    pub fn total_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node
    }

    /// The node a global processor index belongs to.
    pub fn node_of(&self, cpu: usize) -> usize {
        cpu / self.cpus_per_node
    }

    /// The paper's baseline cluster: 8 nodes of 8-way SMPs.
    pub fn baseline() -> Self {
        Self::new(8, 8)
    }
}

/// One step of a processor's script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Execute for the given number of cycles without touching shared data.
    Compute(u64),
    /// Access the shared-memory byte address; `write` selects a store.
    Access {
        /// Global byte address.
        addr: u64,
        /// Whether the access is a store.
        write: bool,
    },
    /// Wait until every processor reaches its matching barrier.
    Barrier,
}

/// Scaling factor applied to the number of accesses per processor; use values
/// below 1.0 for quick tests and above 1.0 for longer runs.
///
/// The scale is part of the sweep engine's cache key, so equality and hashing
/// go through a canonical bit pattern: `0.0` and `-0.0` compare (and hash)
/// equal, and a NaN scale equals itself — the reflexivity `HashMap` requires,
/// which the IEEE-754 derive would violate.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadScale(pub f64);

impl WorkloadScale {
    /// The default scale used by the experiment harness.
    pub fn full() -> Self {
        WorkloadScale(1.0)
    }

    /// A reduced scale for unit tests.
    pub fn quick() -> Self {
        WorkloadScale(0.15)
    }

    /// The canonical bit pattern used for equality and hashing.
    fn canonical_bits(self) -> u64 {
        if self.0 == 0.0 {
            0.0f64.to_bits()
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for WorkloadScale {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bits() == other.canonical_bits()
    }
}

impl Eq for WorkloadScale {}

impl std::hash::Hash for WorkloadScale {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl Default for WorkloadScale {
    fn default() -> Self {
        Self::full()
    }
}

/// A complete workload: one script per processor, plus summary counters.
#[derive(Debug, Clone)]
pub struct Workload {
    app: AppKind,
    topology: Topology,
    scripts: Vec<Vec<Action>>,
    total_compute: u64,
    total_accesses: u64,
    remote_accesses: u64,
}

impl Workload {
    /// Generates the workload for `app` on `topology`.
    pub fn generate(app: AppKind, topology: Topology, scale: WorkloadScale, seed: u64) -> Self {
        let params = app.params();
        let mut rng = DetRng::new(seed ^ (app as u64).wrapping_mul(0x1234_5678_9abc_def1));
        let total_cpus = topology.total_cpus();
        let layout = Layout::new(&params, topology);

        let mut scripts: Vec<Vec<Action>> = vec![Vec::new(); total_cpus];
        let mut total_compute = 0u64;
        let mut total_accesses = 0u64;
        let mut remote_accesses = 0u64;

        let scale = scale.0.max(0.01);
        for phase in 0..params.phases {
            #[allow(clippy::needless_range_loop)]
            // `cpu` also salts the RNG and drives the sharing pattern, not just the index
            for cpu in 0..total_cpus {
                let mut cpu_rng = rng.split((phase as u64) << 32 | cpu as u64);
                let imbalanced = cpu < total_cpus.div_ceil(4);
                let factor = if imbalanced { params.imbalance } else { 1.0 };
                let accesses = ((params.accesses_per_cpu as f64) * scale * factor)
                    .round()
                    .max(1.0) as u64;
                let mut last_remote_element: Option<(usize, u64)> = None;
                for i in 0..accesses {
                    let compute = cpu_rng
                        .next_range(
                            params.compute_per_access / 2,
                            params.compute_per_access * 3 / 2,
                        )
                        .max(1);
                    scripts[cpu].push(Action::Compute(compute));
                    total_compute += compute;

                    let remote = cpu_rng.chance(params.remote_fraction);
                    let owner = if remote {
                        pick_remote_owner(&params, topology, cpu, i, &mut cpu_rng)
                    } else {
                        cpu
                    };
                    if owner != cpu {
                        remote_accesses += 1;
                    }
                    let element = if owner != cpu
                        && last_remote_element.map(|(o, _)| o) == Some(owner)
                        && cpu_rng.chance(params.locality)
                    {
                        last_remote_element.expect("checked above").1
                    } else {
                        cpu_rng.next_below(layout.elements_per_cpu)
                    };
                    if owner != cpu {
                        last_remote_element = Some((owner, element));
                    }
                    let write = cpu_rng.chance(params.write_fraction);
                    scripts[cpu].push(Action::Access {
                        addr: layout.element_addr(owner, element),
                        write,
                    });
                    total_accesses += 1;
                }
            }
            for script in &mut scripts {
                script.push(Action::Barrier);
            }
        }

        Self {
            app,
            topology,
            scripts,
            total_compute,
            total_accesses,
            remote_accesses,
        }
    }

    /// The application this workload models.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// The cluster shape the workload was generated for.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The script of one processor (indexed by global processor id).
    pub fn script(&self, cpu: usize) -> &[Action] {
        &self.scripts[cpu]
    }

    /// Total number of processors.
    pub fn cpus(&self) -> usize {
        self.scripts.len()
    }

    /// Total compute cycles across all processors.
    pub fn total_compute(&self) -> u64 {
        self.total_compute
    }

    /// Total shared-memory accesses across all processors.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Accesses that target another processor's partition.
    pub fn remote_accesses(&self) -> u64 {
        self.remote_accesses
    }

    /// The running time of the workload on an ideal uniprocessor with no
    /// communication: all compute plus one cycle per access. This is the
    /// numerator of every speedup reported by the experiments.
    pub fn uniprocessor_cycles(&self) -> u64 {
        self.total_compute + self.total_accesses
    }
}

/// Picks the owner of a remote access target according to the sharing pattern.
fn pick_remote_owner(
    params: &AppParams,
    topology: Topology,
    cpu: usize,
    access_index: u64,
    rng: &mut DetRng,
) -> usize {
    let total = topology.total_cpus();
    if total == 1 {
        return cpu;
    }
    match params.pattern {
        SharingPattern::Uniform => {
            let mut other = rng.next_below(total as u64 - 1) as usize;
            if other >= cpu {
                other += 1;
            }
            other
        }
        SharingPattern::Neighbor => {
            if rng.chance(0.5) {
                (cpu + 1) % total
            } else {
                (cpu + total - 1) % total
            }
        }
        SharingPattern::AllToAll => {
            let offset = 1 + (access_index as usize % (total - 1));
            (cpu + offset) % total
        }
        SharingPattern::HomeCentric => {
            // A processor on a different node, uniformly.
            let my_node = topology.node_of(cpu);
            if topology.nodes == 1 {
                return (cpu + 1) % total;
            }
            loop {
                let candidate = rng.next_below(total as u64) as usize;
                if topology.node_of(candidate) != my_node {
                    return candidate;
                }
            }
        }
    }
}

/// Maps (owner processor, element index) pairs to byte addresses such that
/// every processor's data lives in pages homed on its own node (the home map
/// assigns page *p* to node *p mod nodes*).
#[derive(Debug, Clone, Copy)]
struct Layout {
    nodes: usize,
    cpus_per_node: usize,
    element_stride: u64,
    elements_per_cpu: u64,
    pages_per_cpu: u64,
}

impl Layout {
    fn new(params: &AppParams, topology: Topology) -> Self {
        let footprint_bytes = params.blocks_per_cpu * 64;
        let element_stride = params.element_stride.max(8);
        let elements_per_cpu = (footprint_bytes / element_stride).max(1);
        let pages_per_cpu = (elements_per_cpu * element_stride)
            .div_ceil(PAGE_BYTES)
            .max(1);
        Self {
            nodes: topology.nodes,
            cpus_per_node: topology.cpus_per_node,
            element_stride,
            elements_per_cpu,
            pages_per_cpu,
        }
    }

    fn element_addr(&self, owner: usize, element: u64) -> u64 {
        let node = owner / self.cpus_per_node;
        let local = (owner % self.cpus_per_node) as u64;
        let byte_offset = element * self.element_stride;
        let page_slot = local * self.pages_per_cpu + byte_offset / PAGE_BYTES;
        // Pages homed on `node` are exactly those congruent to `node` mod nodes.
        let page = node as u64 + self.nodes as u64 * page_slot;
        page * PAGE_BYTES + (byte_offset % PAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload(app: AppKind) -> Workload {
        Workload::generate(app, Topology::new(4, 2), WorkloadScale::quick(), 42)
    }

    #[test]
    fn workload_scale_is_a_well_behaved_hash_key() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: WorkloadScale| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(WorkloadScale(0.0), WorkloadScale(-0.0));
        assert_eq!(hash(WorkloadScale(0.0)), hash(WorkloadScale(-0.0)));
        assert_eq!(WorkloadScale(f64::NAN), WorkloadScale(f64::NAN));
        assert_ne!(WorkloadScale(0.5), WorkloadScale(1.0));
        assert_ne!(hash(WorkloadScale(0.5)), hash(WorkloadScale(1.0)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_workload(AppKind::Fft);
        let b = small_workload(AppKind::Fft);
        assert_eq!(a.total_compute(), b.total_compute());
        assert_eq!(a.total_accesses(), b.total_accesses());
        for cpu in 0..a.cpus() {
            assert_eq!(a.script(cpu), b.script(cpu));
        }
    }

    #[test]
    fn different_seeds_produce_different_traces() {
        let a = Workload::generate(AppKind::Fft, Topology::new(4, 2), WorkloadScale::quick(), 1);
        let b = Workload::generate(AppKind::Fft, Topology::new(4, 2), WorkloadScale::quick(), 2);
        assert_ne!(a.script(0), b.script(0));
    }

    #[test]
    fn every_cpu_has_a_script_ending_in_a_barrier() {
        let w = small_workload(AppKind::Em3d);
        assert_eq!(w.cpus(), 8);
        for cpu in 0..w.cpus() {
            let script = w.script(cpu);
            assert!(!script.is_empty());
            assert_eq!(*script.last().unwrap(), Action::Barrier);
            let barriers = script
                .iter()
                .filter(|a| matches!(a, Action::Barrier))
                .count();
            assert_eq!(barriers as u32, AppKind::Em3d.params().phases);
        }
    }

    #[test]
    fn local_data_is_homed_on_the_owning_node() {
        let topo = Topology::new(4, 2);
        let w = Workload::generate(AppKind::WaterSp, topo, WorkloadScale::quick(), 7);
        // water-sp is almost entirely local: the large majority of accesses of
        // cpu 0 must land on pages homed on node 0.
        let mut local = 0u64;
        let mut total = 0u64;
        for action in w.script(0) {
            if let Action::Access { addr, .. } = action {
                total += 1;
                let page = addr / 4096;
                if page % 4 == 0 {
                    local += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            local * 10 >= total * 9,
            "expected >=90% local accesses, got {local}/{total}"
        );
    }

    #[test]
    fn remote_fraction_tracks_the_parameters() {
        let communication_bound = small_workload(AppKind::Radix);
        let computation_bound = small_workload(AppKind::WaterSp);
        let frac = |w: &Workload| w.remote_accesses() as f64 / w.total_accesses() as f64;
        assert!(frac(&communication_bound) > 4.0 * frac(&computation_bound));
    }

    #[test]
    fn imbalanced_apps_give_more_work_to_the_first_quarter() {
        let w = small_workload(AppKind::Cholesky);
        let accesses = |cpu: usize| {
            w.script(cpu)
                .iter()
                .filter(|a| matches!(a, Action::Access { .. }))
                .count()
        };
        assert!(accesses(0) > 2 * accesses(w.cpus() - 1));
    }

    #[test]
    fn balanced_apps_spread_work_evenly() {
        let w = small_workload(AppKind::Fft);
        let accesses = |cpu: usize| {
            w.script(cpu)
                .iter()
                .filter(|a| matches!(a, Action::Access { .. }))
                .count()
        };
        let first = accesses(0);
        let last = accesses(w.cpus() - 1);
        assert!((first as f64 / last as f64) < 1.3);
    }

    #[test]
    fn uniprocessor_cycles_accounts_for_compute_and_accesses() {
        let w = small_workload(AppKind::Barnes);
        assert_eq!(
            w.uniprocessor_cycles(),
            w.total_compute() + w.total_accesses()
        );
        assert!(w.uniprocessor_cycles() > 0);
    }

    #[test]
    fn scale_changes_the_amount_of_work() {
        let quick =
            Workload::generate(AppKind::Fft, Topology::new(2, 2), WorkloadScale::quick(), 3);
        let full = Workload::generate(AppKind::Fft, Topology::new(2, 2), WorkloadScale::full(), 3);
        assert!(full.total_accesses() > 2 * quick.total_accesses());
    }

    #[test]
    fn topology_helpers() {
        let t = Topology::new(4, 16);
        assert_eq!(t.total_cpus(), 64);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(63), 3);
        assert_eq!(Topology::baseline().total_cpus(), 64);
        assert_eq!(Topology::new(0, 0).total_cpus(), 1);
    }

    #[test]
    fn all_apps_generate_without_panicking() {
        for app in AppKind::all() {
            let w = Workload::generate(app, Topology::new(2, 2), WorkloadScale::quick(), 11);
            assert!(w.total_accesses() > 0, "{app} generated no accesses");
        }
    }
}
