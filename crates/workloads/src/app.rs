//! The applications of the paper's evaluation and their model parameters.

use std::fmt;

/// The seven shared-memory applications of Table 2 (six SPLASH-2 programs
/// plus the Split-C `em3d` kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppKind {
    /// Barnes-Hut N-body simulation (latency-bound, fine-grain sharing).
    Barnes,
    /// Sparse Cholesky factorization (bandwidth-bound, load-imbalanced,
    /// compulsory misses to data that is not actively shared).
    Cholesky,
    /// 3-D wave propagation on an irregular graph (producer/consumer with
    /// neighbours, bursty synchronous phases).
    Em3d,
    /// Complex 1-D radix-√n FFT (all-to-all transpose phases,
    /// communication-bound).
    Fft,
    /// Fast Multipole N-body simulation (latency-bound, fine-grain sharing).
    Fmm,
    /// Integer radix sort (all-to-all permutation phases, write-heavy,
    /// communication-bound).
    Radix,
    /// Water molecule force simulation, spatial variant (computation-bound).
    WaterSp,
}

impl AppKind {
    /// All applications, in the order the paper lists them.
    pub const fn all() -> [AppKind; 7] {
        [
            AppKind::Barnes,
            AppKind::Cholesky,
            AppKind::Em3d,
            AppKind::Fft,
            AppKind::Fmm,
            AppKind::Radix,
            AppKind::WaterSp,
        ]
    }

    /// Lower-case name used in reports (matches the paper's tables).
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Barnes => "barnes",
            AppKind::Cholesky => "cholesky",
            AppKind::Em3d => "em3d",
            AppKind::Fft => "fft",
            AppKind::Fmm => "fmm",
            AppKind::Radix => "radix",
            AppKind::WaterSp => "water-sp",
        }
    }

    /// The input set the paper used (recorded for the Table-2 report; the
    /// synthetic model scales work abstractly rather than replaying these
    /// inputs).
    pub fn paper_input(&self) -> &'static str {
        match self {
            AppKind::Barnes => "16K particles",
            AppKind::Cholesky => "tk29.O",
            AppKind::Em3d => "76K nodes, 15% remote",
            AppKind::Fft => "1M points",
            AppKind::Fmm => "16K particles",
            AppKind::Radix => "4M integers",
            AppKind::WaterSp => "4096 molecules",
        }
    }

    /// The S-COMA speedup the paper reports on a cluster of 8 8-way SMPs
    /// (Table 2); used as the reference point in EXPERIMENTS.md.
    pub fn paper_scoma_speedup(&self) -> f64 {
        match self {
            AppKind::Barnes => 31.0,
            AppKind::Cholesky => 5.0,
            AppKind::Em3d => 34.0,
            AppKind::Fft => 19.0,
            AppKind::Fmm => 31.0,
            AppKind::Radix => 12.0,
            AppKind::WaterSp => 61.0,
        }
    }

    /// The model parameters of this application.
    pub fn params(&self) -> AppParams {
        match self {
            // Latency-bound: sporadic, uniformly distributed communication,
            // moderate computation, very fine sharing granularity.
            AppKind::Barnes => AppParams {
                compute_per_access: 700,
                remote_fraction: 0.11,
                write_fraction: 0.25,
                pattern: SharingPattern::Uniform,
                accesses_per_cpu: 220,
                phases: 2,
                blocks_per_cpu: 96,
                locality: 0.35,
                imbalance: 1.05,
                element_stride: 32,
            },
            // Bandwidth-bound, heavily imbalanced, compulsory misses to data
            // that is not actively shared (reply handlers read memory).
            AppKind::Cholesky => AppParams {
                compute_per_access: 150,
                remote_fraction: 0.45,
                write_fraction: 0.15,
                pattern: SharingPattern::HomeCentric,
                accesses_per_cpu: 260,
                phases: 1,
                blocks_per_cpu: 256,
                locality: 0.05,
                imbalance: 6.0,
                element_stride: 256,
            },
            // Producer/consumer with neighbours in synchronous phases.
            AppKind::Em3d => AppParams {
                compute_per_access: 260,
                remote_fraction: 0.26,
                write_fraction: 0.45,
                pattern: SharingPattern::Neighbor,
                accesses_per_cpu: 200,
                phases: 3,
                blocks_per_cpu: 128,
                locality: 0.25,
                imbalance: 1.0,
                element_stride: 64,
            },
            // All-to-all transpose phases, communication-bound, bursty.
            AppKind::Fft => AppParams {
                compute_per_access: 220,
                remote_fraction: 0.32,
                write_fraction: 0.45,
                pattern: SharingPattern::AllToAll,
                accesses_per_cpu: 190,
                phases: 2,
                blocks_per_cpu: 160,
                locality: 0.15,
                imbalance: 1.0,
                element_stride: 64,
            },
            AppKind::Fmm => AppParams {
                compute_per_access: 760,
                remote_fraction: 0.10,
                write_fraction: 0.22,
                pattern: SharingPattern::Uniform,
                accesses_per_cpu: 220,
                phases: 2,
                blocks_per_cpu: 96,
                locality: 0.35,
                imbalance: 1.1,
                element_stride: 32,
            },
            // Write-heavy all-to-all permutation; the most communication-bound.
            AppKind::Radix => AppParams {
                compute_per_access: 240,
                remote_fraction: 0.30,
                write_fraction: 0.65,
                pattern: SharingPattern::AllToAll,
                accesses_per_cpu: 180,
                phases: 2,
                blocks_per_cpu: 192,
                locality: 0.10,
                imbalance: 1.0,
                element_stride: 64,
            },
            // Computation-bound; communication is rare.
            AppKind::WaterSp => AppParams {
                compute_per_access: 2600,
                remote_fraction: 0.018,
                write_fraction: 0.20,
                pattern: SharingPattern::Uniform,
                accesses_per_cpu: 220,
                phases: 2,
                blocks_per_cpu: 64,
                locality: 0.45,
                imbalance: 1.0,
                element_stride: 128,
            },
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How remote accesses choose their target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingPattern {
    /// Any other processor, uniformly (sporadic, evenly distributed — barnes,
    /// fmm, water).
    Uniform,
    /// The neighbouring processors in a ring (em3d).
    Neighbor,
    /// Every other processor in turn (fft/radix transpose and permutation
    /// phases).
    AllToAll,
    /// Data homed on other nodes but not actively written by them (cholesky's
    /// compulsory misses).
    HomeCentric,
}

/// The tunable parameters of one application model.
///
/// These are the knobs the paper's qualitative discussion identifies as what
/// drives each application's behaviour: computation-to-communication ratio,
/// the sharing pattern, how bursty and write-heavy communication is, how much
/// data is touched, load imbalance, and the sharing granularity (which
/// determines false-sharing susceptibility at large block sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppParams {
    /// Mean compute cycles between consecutive shared-memory accesses.
    pub compute_per_access: u64,
    /// Fraction of shared accesses that target another processor's data.
    pub remote_fraction: f64,
    /// Fraction of shared accesses that are stores.
    pub write_fraction: f64,
    /// How remote targets are chosen.
    pub pattern: SharingPattern,
    /// Shared accesses per processor per phase (scaled by the workload scale).
    pub accesses_per_cpu: u64,
    /// Number of barrier-separated phases.
    pub phases: u32,
    /// Number of distinct blocks in each processor's partition.
    pub blocks_per_cpu: u64,
    /// Probability that a remote access revisits the most recently used remote
    /// block instead of picking a new one.
    pub locality: f64,
    /// Work multiplier applied to the first quarter of the processors
    /// (cholesky's severe load imbalance).
    pub imbalance: f64,
    /// Spacing in bytes between consecutive data elements; strides smaller
    /// than the block size mean several processors' data share a block, which
    /// turns into false sharing at large block sizes.
    pub element_stride: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_applications_are_listed() {
        assert_eq!(AppKind::all().len(), 7);
        let names: Vec<&str> = AppKind::all().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["barnes", "cholesky", "em3d", "fft", "fmm", "radix", "water-sp"]
        );
    }

    #[test]
    fn paper_speedups_match_table_2() {
        assert_eq!(AppKind::WaterSp.paper_scoma_speedup(), 61.0);
        assert_eq!(AppKind::Cholesky.paper_scoma_speedup(), 5.0);
        assert_eq!(AppKind::Fft.paper_scoma_speedup(), 19.0);
    }

    #[test]
    fn parameters_reflect_the_papers_application_classes() {
        // water-sp is the most computation-bound.
        let water = AppKind::WaterSp.params();
        for app in AppKind::all() {
            if app != AppKind::WaterSp {
                assert!(water.compute_per_access > app.params().compute_per_access);
                assert!(water.remote_fraction <= app.params().remote_fraction);
            }
        }
        // cholesky is the most imbalanced.
        assert!(AppKind::Cholesky.params().imbalance > 2.0);
        // fft and radix are all-to-all.
        assert_eq!(AppKind::Fft.params().pattern, SharingPattern::AllToAll);
        assert_eq!(AppKind::Radix.params().pattern, SharingPattern::AllToAll);
        // barnes and fmm share at fine granularity (false sharing at 128 B).
        assert!(AppKind::Barnes.params().element_stride < 128);
        assert!(AppKind::Fmm.params().element_stride < 128);
    }

    #[test]
    fn display_and_inputs_are_nonempty() {
        for app in AppKind::all() {
            assert!(!app.to_string().is_empty());
            assert!(!app.paper_input().is_empty());
        }
    }
}
