//! Multi-connection protocol server: the network edge of the PDQ pipeline.
//!
//! The paper's point is parallelizing fine-grain protocol *dispatch* — and
//! the executor side of this repo is lock-free — but
//! [`serve_tcp_once`](crate::serve_tcp_once) accepts exactly one client.
//! This module turns the protocol service into a real network server in two
//! tiers:
//!
//! * [`serve_pool`] — **thread-per-connection pool**. Every accepted
//!   connection gets a scoped thread running the existing
//!   [`serve_durable`](crate::serve_durable) loop against the *shared*
//!   service, so all connections feed one executor. Optionally, each
//!   connection write-ahead-logs its events into its own directory
//!   (`conn-NNNN` under a shared root), so durability works over real
//!   sockets.
//! * [`serve_poll`] — **readiness-polled event loop**. A small bounded set of
//!   worker threads multiplexes hundreds of non-blocking connections
//!   (`set_nonblocking(true)` over `std::net`), resuming partial
//!   reads/writes with the staged frame codec
//!   ([`FrameDecoder`] /
//!   [`FrameEncoder`]). On the hot path a
//!   readiness wakeup drains *every* buffered frame and admits the decoded
//!   events through **one** [`BatchService::try_admit`] call (one amortized
//!   `try_submit_batch` pass) instead of a per-frame `service.call`.
//!
//! # Flow control (poll tier)
//!
//! Executor backpressure becomes TCP pushback instead of unbounded buffers.
//! A connection is read **only** while all of these hold:
//!
//! ```text
//!   parked admission queue empty        (executor accepted everything)
//!   in-flight handles < max_pending     (reply window not exhausted)
//!   encoder backlog < write watermark   (peer is draining its replies)
//!   stream not at EOF
//! ```
//!
//! When `try_admit` refuses entries (executor queue full), the leftovers stay
//! in a per-connection parked batch, read interest drops, and the kernel's
//! receive buffer fills until TCP pushes back on the client. Each such
//! suspension is counted ([`PollReport::suspensions`]) so backpressure is
//! observable, not inferred.
//!
//! # Determinism
//!
//! Handler effects are commutative, so the merged aggregate of an N-client
//! run is a pure function of the *multiset* of delivered events: byte-
//! identical to [`reference_aggregate`](crate::reference_aggregate) over the
//! concatenated per-client streams, whatever the executor, tier, or
//! interleaving. [`client_config`] derives per-client seeds via
//! `DetRng::stream`, and [`merged_reference_aggregate`] is the sequential
//! fold the drivers compare against.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use pdq_core::executor::{JobError, SubmitBatch, TypedHandle};
use pdq_sim::DetRng;

use crate::metrics::{ConnObs, Observability};
use crate::protocol_server::{ServerAggregate, ServerConfig, ServerError};
use crate::service::{
    decode_request, encode_ack, encode_aggregate_reply, encode_metrics_reply, serve_observed, Ack,
    BatchService, Durability, ProtocolService, Reply, WireRequest, ACK_DONE, ACK_PANICKED,
};
use crate::transport::{FrameDecoder, FrameEncoder, TcpTransport};
use crate::wal::WalWriter;

/// Encoder backlog (bytes staged and unaccepted by the socket) above which
/// the poll loop stops reading a connection: a peer that sends requests but
/// never drains replies must not grow the outgoing buffer without bound.
const ENCODER_WRITE_WATERMARK: usize = 64 * 1024;

/// How long an idle poll worker sleeps when a full sweep over its
/// connections made no progress (no bytes moved, no jobs admitted, no acks
/// resolved). Small enough to keep added reply latency in the hundreds of
/// microseconds, large enough not to spin a core per worker.
const IDLE_BACKOFF: Duration = Duration::from_micros(200);

/// Per-connection write-ahead-log configuration for [`serve_pool`]: each
/// accepted connection logs into its own `conn-NNNN` directory under
/// [`root`](Self::root), so recovery can replay each connection's stream
/// independently ([`pool_wal_dir`] names the directories).
#[derive(Debug, Clone)]
pub struct PoolWal {
    /// Directory that holds one `conn-NNNN` subdirectory per connection.
    pub root: PathBuf,
    /// Cache-block count recorded in each log header.
    pub blocks: u64,
    /// Events between sync points (clamped to at least 1).
    pub sync_every: u64,
    /// Events between snapshot records; `0` disables snapshots.
    pub snapshot_every: u64,
    /// Fault injection: arm every connection's log to die with a torn
    /// half-record after this many appended events (the crash-recovery
    /// smoke). `None` in production use.
    pub crash_after: Option<u64>,
}

/// Options for the thread-per-connection pool tier ([`serve_pool`]).
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// The server reply window each connection's serve loop runs with
    /// (clients must drive a strictly larger window, as with
    /// [`serve`](crate::serve)).
    pub window: usize,
    /// How many connections to accept before the server stops accepting and
    /// waits for the accepted ones to finish.
    pub accept: usize,
    /// Optional per-connection write-ahead logging.
    pub wal: Option<PoolWal>,
}

impl PoolOptions {
    /// A pool serving `accept` connections with reply window `window`, no
    /// durability.
    pub fn new(accept: usize, window: usize) -> Self {
        Self {
            window,
            accept,
            wal: None,
        }
    }
}

/// What a [`serve_pool`] run did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolReport {
    /// Connections accepted and served.
    pub connections: u64,
    /// Event acks sent, summed over all connections.
    pub answered: u64,
}

/// The WAL directory [`serve_pool`] uses for connection `index` under
/// `root` — `root/conn-NNNN`. Recovery tooling lists these to replay each
/// connection's log.
pub fn pool_wal_dir(root: &std::path::Path, index: usize) -> PathBuf {
    root.join(format!("conn-{index:04}"))
}

fn serve_pool_conn(
    stream: TcpStream,
    service: &dyn ProtocolService,
    opts: &PoolOptions,
    index: usize,
    obs: Option<&Observability>,
) -> Result<u64, ServerError> {
    stream.set_nodelay(true).map_err(ServerError::Io)?;
    let mut transport = TcpTransport::new(stream).map_err(ServerError::Io)?;
    let conn = obs.map(|o| o.conn(index as u64));
    if let Some(conn) = &conn {
        conn.opened();
    }
    let served = match &opts.wal {
        None => serve_observed(
            service,
            &mut transport,
            opts.window,
            Durability::Off,
            conn.as_ref(),
        ),
        Some(w) => {
            let dir = pool_wal_dir(&w.root, index);
            let mut wal = WalWriter::create(&dir, w.blocks).map_err(ServerError::Io)?;
            if let Some(n) = w.crash_after {
                wal.arm_crash_after_events(n);
            }
            if let Some(o) = obs {
                wal.set_metrics(o.wal_metrics(index as u64));
            }
            let durability = if w.snapshot_every > 0 {
                Durability::LogSnapshot {
                    wal: &mut wal,
                    sync_every: w.sync_every,
                    snapshot_every: w.snapshot_every,
                }
            } else {
                Durability::Log {
                    wal: &mut wal,
                    sync_every: w.sync_every,
                }
            };
            serve_observed(
                service,
                &mut transport,
                opts.window,
                durability,
                conn.as_ref(),
            )
        }
    };
    if let Some(conn) = &conn {
        conn.closed(*served.as_ref().unwrap_or(&0));
    }
    served
}

/// Serves `opts.accept` connections from `listener`, one scoped thread per
/// connection, all against the shared `service` (and therefore one shared
/// executor and one shared aggregate). Returns once every accepted
/// connection has been served to completion.
///
/// Connections are accepted sequentially but served concurrently: the accept
/// loop spawns each connection's serve thread immediately, so earlier
/// clients stream while later ones are still connecting.
///
/// The aggregate of a multi-client run is fetched by the *driver*, once,
/// after this returns (`service.flush()` + `service.aggregate(..)`) — a
/// per-connection aggregate snapshot of shared state would be racy, which is
/// why multi-client clients end with a drain request
/// ([`run_client_events`](crate::run_client_events)) instead of an aggregate
/// request.
///
/// # Errors
///
/// The first error any connection hit (accept/socket-configuration failures
/// included), after all other connections have finished serving. Durability
/// faults on one connection therefore do not abort the others mid-stream.
pub fn serve_pool(
    listener: &TcpListener,
    service: &dyn ProtocolService,
    opts: &PoolOptions,
) -> Result<PoolReport, ServerError> {
    serve_pool_observed(listener, service, opts, None)
}

/// [`serve_pool`] with optional observability: connection lifecycle and WAL
/// counters/trace events flow into `obs`, per-connection serve loops record
/// reply latency, and a [`WireRequest::Metrics`] frame on any connection
/// answers with the rendered registry. Pass `None` for the uninstrumented
/// behaviour (identical to [`serve_pool`]).
///
/// # Errors
///
/// As [`serve_pool`].
pub fn serve_pool_observed(
    listener: &TcpListener,
    service: &dyn ProtocolService,
    opts: &PoolOptions,
    obs: Option<&Observability>,
) -> Result<PoolReport, ServerError> {
    if let Some(o) = obs {
        o.set_tier("pool");
    }
    let accept = opts.accept.max(1);
    let answered = AtomicU64::new(0);
    let connections = AtomicU64::new(0);
    let first_err: Mutex<Option<ServerError>> = Mutex::new(None);
    let record_err = |e: ServerError| {
        let mut slot = first_err.lock().unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(e);
    };
    std::thread::scope(|scope| {
        for index in 0..accept {
            match listener.accept() {
                Ok((stream, _)) => {
                    connections.fetch_add(1, Ordering::Relaxed);
                    let answered = &answered;
                    let record_err = &record_err;
                    scope.spawn(
                        move || match serve_pool_conn(stream, service, opts, index, obs) {
                            Ok(n) => {
                                answered.fetch_add(n, Ordering::Relaxed);
                            }
                            Err(e) => record_err(e),
                        },
                    );
                }
                Err(e) => {
                    record_err(ServerError::Io(e));
                    break;
                }
            }
        }
    });
    match first_err
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        Some(e) => Err(e),
        None => Ok(PoolReport {
            connections: connections.into_inner(),
            answered: answered.into_inner(),
        }),
    }
}

/// Options for the readiness-polled tier ([`serve_poll`]).
#[derive(Debug, Clone, Copy)]
pub struct PollOptions {
    /// Worker threads multiplexing the connections (clamped to at least 1).
    /// Hundreds of connections on single-digit workers is the intended
    /// regime.
    pub workers: usize,
    /// How many connections to accept before the server stops accepting and
    /// drains the accepted ones.
    pub accept: usize,
    /// Per-connection cap on in-flight (admitted or parked) calls; reaching
    /// it drops read interest until acks drain it below the cap.
    pub max_pending: usize,
}

impl PollOptions {
    /// `accept` connections on `workers` threads with a default in-flight
    /// cap of 128 calls per connection.
    pub fn new(accept: usize, workers: usize) -> Self {
        Self {
            workers,
            accept,
            max_pending: 128,
        }
    }
}

/// What a [`serve_poll`] run did. The counters that matter for the flow-
/// control contract are [`suspensions`](Self::suspensions) (executor
/// `WouldBlock` observably suspended socket reads) and
/// [`batches`](Self::batches) vs [`events`](Self::events) (events admitted
/// per amortized dispatch pass).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PollReport {
    /// Connections accepted.
    pub connections: u64,
    /// Connections torn down by a per-connection protocol/I/O failure
    /// (the rest of the server keeps serving).
    pub failed: u64,
    /// Event acks sent.
    pub answered: u64,
    /// Handler calls that resolved `Ok` (the aggregate's `completed`).
    pub completed: u64,
    /// Event frames decoded and prepared for admission.
    pub events: u64,
    /// `try_admit` passes that admitted at least one entry.
    pub batches: u64,
    /// Times a refused admission left entries parked and suspended a
    /// connection's socket reads (executor backpressure → TCP pushback).
    pub suspensions: u64,
}

impl PollReport {
    fn merge(&mut self, other: &PollReport) {
        self.connections += other.connections;
        self.failed += other.failed;
        self.answered += other.answered;
        self.completed += other.completed;
        self.events += other.events;
        self.batches += other.batches;
        self.suspensions += other.suspensions;
    }
}

/// Per-connection state of the poll loop: the resumable codec halves, the
/// FIFO of reply handles, and the parked (admission-refused) tail.
///
/// Invariant: `parked` entries are always the **suffix** of the calls whose
/// handles sit at the back of `inflight` — `try_admit` admits from the
/// front and refuses a tail, and new frames append to both. Handles are
/// resolved front-first, so acks go out in request order even though
/// admission is batched.
struct PollConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    encoder: FrameEncoder,
    inflight: VecDeque<TypedHandle<Reply>>,
    parked: SubmitBatch,
    agg_requested: bool,
    eof: bool,
    completed: u64,
    report: PollReport,
    /// Observability handle; `None` leaves the sweep uninstrumented.
    obs: Option<ConnObs>,
    /// Decode timestamps, index-parallel to `inflight` (only maintained
    /// when `obs` is set).
    stamps: VecDeque<Instant>,
    /// Whether the connection is currently read-suspended by a parked
    /// admission tail (tracked so the trace logs transitions, not sweeps).
    suspended: bool,
    /// Whether the encoder backlog is currently above the write watermark.
    write_blocked: bool,
}

impl PollConn {
    fn new(stream: TcpStream, obs: Option<ConnObs>) -> Self {
        if let Some(obs) = &obs {
            obs.opened();
        }
        Self {
            stream,
            decoder: FrameDecoder::new(),
            encoder: FrameEncoder::new(),
            inflight: VecDeque::new(),
            parked: SubmitBatch::new(),
            agg_requested: false,
            eof: false,
            completed: 0,
            report: PollReport::default(),
            obs,
            stamps: VecDeque::new(),
            suspended: false,
            write_blocked: false,
        }
    }

    /// Records the connection's end (called once, when the worker retires
    /// it — served to completion or torn down by an error).
    fn finish(&self) {
        if let Some(obs) = &self.obs {
            obs.closed(self.report.answered);
        }
    }

    fn read_interest(&self, max_pending: usize) -> bool {
        !self.eof
            && self.parked.is_empty()
            && self.inflight.len() < max_pending
            && self.encoder.staged() < ENCODER_WRITE_WATERMARK
    }

    fn done(&self) -> bool {
        self.eof
            && self.inflight.is_empty()
            && self.parked.is_empty()
            && self.encoder.is_empty()
            && !self.agg_requested
    }

    /// One sweep: flush pending writes, ack finished calls, retry parked
    /// admissions, and (interest permitting) read + decode + batch-admit new
    /// frames. Returns whether any progress was made.
    fn sweep(
        &mut self,
        service: &dyn BatchService,
        max_pending: usize,
    ) -> Result<bool, ServerError> {
        let mut progress = false;

        // 1. Push staged reply bytes while the socket accepts them. After
        //    EOF the peer is gone: drop the backlog instead of writing into
        //    a closed stream (mirrors `serve` abandoning pending replies).
        if !self.encoder.is_empty() {
            if self.eof {
                let _ = self.encoder.write_to(&mut io::sink());
            } else {
                progress |= self.encoder.write_to(&mut self.stream).map_err(io_error)? > 0;
            }
        }

        // 2. Resolve finished calls front-first (request order). Parked
        //    (never-admitted) entries correspond to the *back* of
        //    `inflight`, so a finished front handle is always an admitted
        //    call.
        while self.inflight.front().is_some_and(TypedHandle::is_finished) {
            let handle = self.inflight.pop_front().expect("front was checked");
            let ack = match handle.wait() {
                Ok(reply) => {
                    self.completed += 1;
                    self.report.completed += 1;
                    Ack {
                        status: ACK_DONE,
                        reply,
                    }
                }
                Err(JobError::Panicked) => Ack {
                    status: ACK_PANICKED,
                    reply: Reply {
                        class: 0xFF,
                        digest: 0,
                    },
                },
                Err(JobError::Aborted) => return Err(ServerError::Shutdown),
            };
            self.encoder
                .push_frame(&encode_ack(ack))
                .map_err(ServerError::Io)?;
            self.report.answered += 1;
            if let (Some(obs), Some(stamp)) = (&self.obs, self.stamps.pop_front()) {
                let latency = stamp.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                obs.reply(latency);
            }
            progress = true;
        }

        // Encoder-watermark backpressure: the peer stopped draining acks,
        // so `read_interest` below goes false until the backlog shrinks.
        // Observability logs the transition, not every blocked sweep.
        if let Some(obs) = &self.obs {
            let blocked = self.encoder.staged() >= ENCODER_WRITE_WATERMARK;
            if blocked && !self.write_blocked {
                obs.write_blocked(self.encoder.staged() as u64);
            }
            self.write_blocked = blocked;
        }

        // 3. One admission pass per sweep: either retry the parked tail or
        //    (below) admit freshly decoded frames — never both, so executor
        //    pressure throttles intake instead of racing it.
        if !self.parked.is_empty() {
            let admitted = service.try_admit(&mut self.parked)?;
            progress |= admitted > 0;
            if admitted > 0 {
                self.report.batches += 1;
                if let Some(obs) = &self.obs {
                    obs.admitted(admitted as u64);
                }
            }
            if self.parked.is_empty() && self.suspended {
                self.suspended = false;
                if let Some(obs) = &self.obs {
                    obs.resumed();
                }
            }
        } else if self.read_interest(max_pending) {
            let status = self.decoder.fill_from(&mut self.stream).map_err(io_error)?;
            self.eof |= status.eof;
            progress |= status.read > 0;
            while let Some(frame) = self.decoder.next_frame().map_err(io_error)? {
                match decode_request(&frame)? {
                    WireRequest::Event(event) => {
                        let (key, job, handle) = service.prepare(event);
                        self.parked.push(key, job);
                        self.inflight.push_back(handle);
                        if self.obs.is_some() {
                            self.stamps.push_back(Instant::now());
                        }
                        self.report.events += 1;
                    }
                    // The poll tier acks eagerly as handles finish, so a
                    // drain request needs no action: the client's
                    // outstanding acks are already on their way.
                    WireRequest::Drain => {}
                    WireRequest::Metrics => {
                        let text = self.obs.as_ref().map(ConnObs::render).unwrap_or_default();
                        self.encoder
                            .push_frame(&encode_metrics_reply(&text))
                            .map_err(ServerError::Io)?;
                        progress = true;
                    }
                    WireRequest::Aggregate => self.agg_requested = true,
                }
            }
            if self.eof && self.decoder.has_partial() {
                return Err(ServerError::Protocol("stream ended mid-frame".into()));
            }
            if !self.parked.is_empty() {
                let admitted = service.try_admit(&mut self.parked)?;
                if admitted > 0 {
                    self.report.batches += 1;
                    if let Some(obs) = &self.obs {
                        obs.admitted(admitted as u64);
                    }
                    progress = true;
                }
                if !self.parked.is_empty() {
                    // Executor refused part of the batch: the leftover tail
                    // stays parked and `read_interest` goes false, so the
                    // kernel buffer fills and TCP pushes back on the peer.
                    self.report.suspensions += 1;
                    if !self.suspended {
                        self.suspended = true;
                        if let Some(obs) = &self.obs {
                            obs.suspended(self.parked.len() as u64);
                        }
                    }
                }
            }
        }

        // 4. An aggregate answer waits until this connection's own calls
        //    have drained, then flushes the *shared* service so the fold is
        //    quiescent. (Multi-client runs use drain + a driver-side
        //    aggregate instead; see `serve_pool`.)
        if self.agg_requested && self.inflight.is_empty() && self.parked.is_empty() {
            service.flush();
            let agg = service.aggregate(self.completed);
            self.encoder
                .push_frame(&encode_aggregate_reply(&agg))
                .map_err(ServerError::Io)?;
            self.agg_requested = false;
            progress = true;
        }

        Ok(progress)
    }
}

/// Maps poll-loop stream failures exactly as the blocking server loop does:
/// truncation/malformed-data are the peer's protocol violations, the rest
/// are I/O faults.
fn io_error(e: io::Error) -> ServerError {
    match e.kind() {
        io::ErrorKind::UnexpectedEof => ServerError::Protocol(format!("truncated frame: {e}")),
        io::ErrorKind::InvalidData => ServerError::Protocol(format!("malformed frame: {e}")),
        _ => ServerError::Io(e),
    }
}

fn poll_worker(
    rx: &mpsc::Receiver<(TcpStream, u64)>,
    service: &dyn BatchService,
    max_pending: usize,
    obs: Option<&Observability>,
) -> Result<PollReport, ServerError> {
    let mut report = PollReport::default();
    let mut conns: Vec<PollConn> = Vec::new();
    let mut disconnected = false;
    let accept = |(stream, id): (TcpStream, u64)| PollConn::new(stream, obs.map(|o| o.conn(id)));
    loop {
        if conns.is_empty() {
            if disconnected {
                return Ok(report);
            }
            match rx.recv() {
                Ok(dealt) => {
                    report.connections += 1;
                    conns.push(accept(dealt));
                }
                Err(_) => return Ok(report),
            }
        }
        loop {
            match rx.try_recv() {
                Ok(dealt) => {
                    report.connections += 1;
                    conns.push(accept(dealt));
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let mut progress = false;
        let mut index = 0;
        while index < conns.len() {
            match conns[index].sweep(service, max_pending) {
                Ok(p) => {
                    progress |= p;
                    if conns[index].done() {
                        let conn = conns.swap_remove(index);
                        conn.finish();
                        report.merge(&conn.report);
                    } else {
                        index += 1;
                    }
                }
                // Executor shutdown is fatal for the whole server; anything
                // else (peer reset, torn frame, protocol garbage) tears down
                // this one connection and the rest keep serving.
                Err(ServerError::Shutdown) => return Err(ServerError::Shutdown),
                Err(_) => {
                    let conn = conns.swap_remove(index);
                    conn.finish();
                    report.merge(&conn.report);
                    report.failed += 1;
                    progress = true;
                }
            }
        }
        if !progress {
            std::thread::sleep(IDLE_BACKOFF);
        }
    }
}

/// Serves `opts.accept` connections from `listener` on `opts.workers`
/// readiness-polling threads — the tier that holds hundreds of connections
/// on single-digit threads. The accept loop (calling thread) configures each
/// socket non-blocking and deals it round-robin to a worker; each worker
/// sweeps its connections, resuming partial frames with the staged codec and
/// admitting each wakeup's decoded events through one amortized
/// [`BatchService::try_admit`] pass.
///
/// Per-connection failures (peer reset, torn or malformed frames) tear down
/// that connection only ([`PollReport::failed`]); the run keeps serving.
///
/// # Errors
///
/// [`ServerError::Io`] if accepting or configuring a socket fails,
/// [`ServerError::Shutdown`] if the executor shuts down while calls are in
/// flight (fatal: retrying admission can never succeed).
pub fn serve_poll(
    listener: &TcpListener,
    service: &dyn BatchService,
    opts: &PollOptions,
) -> Result<PollReport, ServerError> {
    serve_poll_observed(listener, service, opts, None)
}

/// [`serve_poll`] with optional observability: each worker's sweep records
/// admission batches, backpressure transitions, and reply latency into
/// `obs`, and a [`WireRequest::Metrics`] frame on any connection answers
/// with the rendered registry. Pass `None` for the uninstrumented behaviour
/// (identical to [`serve_poll`]).
///
/// # Errors
///
/// As [`serve_poll`].
pub fn serve_poll_observed(
    listener: &TcpListener,
    service: &dyn BatchService,
    opts: &PollOptions,
    obs: Option<&Observability>,
) -> Result<PollReport, ServerError> {
    if let Some(o) = obs {
        o.set_tier("poll");
    }
    let workers = opts.workers.max(1);
    let accept = opts.accept.max(1);
    let max_pending = opts.max_pending.max(1);
    std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<(TcpStream, u64)>();
            txs.push(tx);
            handles.push(scope.spawn(move || poll_worker(&rx, service, max_pending, obs)));
        }
        let mut accept_err = None;
        for index in 0..accept {
            let accepted = listener
                .accept()
                .and_then(|(stream, _)| {
                    stream.set_nodelay(true)?;
                    stream.set_nonblocking(true)?;
                    Ok(stream)
                })
                .map_err(ServerError::Io);
            match accepted {
                Ok(stream) => {
                    // A send only fails if the worker died; surface that as
                    // the worker's own error after the join below.
                    let _ = txs[index % workers].send((stream, index as u64));
                }
                Err(e) => {
                    accept_err = Some(e);
                    break;
                }
            }
        }
        drop(txs);
        let mut report = PollReport::default();
        let mut first_err = accept_err;
        for handle in handles {
            match handle.join().expect("poll worker must not panic") {
                Ok(worker_report) => report.merge(&worker_report),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    })
}

/// The configuration client `client` of a multi-client run drives: client 0
/// replays `base` exactly (so a 1-client run is byte-for-byte the
/// single-client run), later clients get independent seeds derived through
/// `DetRng::stream` — deterministic in (`base.seed`, `client`), uncorrelated
/// across clients.
pub fn client_config(base: &ServerConfig, client: u64) -> ServerConfig {
    if client == 0 {
        *base
    } else {
        base.seed(DetRng::stream(base.seed, 0xc11e_4700 ^ client).next_u64())
    }
}

/// The sequential reference fold for an N-client run: every client's
/// deterministic stream ([`client_config`]), concatenated and folded through
/// one fresh state on the calling thread. Because handler effects are
/// commutative, any server tier × executor combination that delivers
/// exactly these events must produce this aggregate byte for byte.
pub fn merged_reference_aggregate(base: &ServerConfig, clients: u64) -> ServerAggregate {
    let mut events = Vec::with_capacity(base.events * clients.max(1) as usize);
    for client in 0..clients.max(1) {
        events.extend(crate::protocol_server::generate_events(&client_config(
            base, client,
        )));
    }
    crate::protocol_server::reference_aggregate(&events, base.blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol_server::generate_events;
    use crate::service::{run_client, run_client_events};
    use crate::transport::TcpTransport;
    use pdq_core::executor::{build_executor, ExecutorSpec, TypedFuture, EXECUTOR_NAMES};
    use pdq_core::ShutdownError;
    use std::sync::atomic::AtomicUsize;

    fn tcp_client(
        addr: std::net::SocketAddr,
        events: &[pdq_dsm::ProtocolEvent],
        window: usize,
    ) -> Result<crate::ClientReport, ServerError> {
        let stream = TcpStream::connect(addr).map_err(ServerError::Io)?;
        stream.set_nodelay(true).map_err(ServerError::Io)?;
        let mut transport = TcpTransport::new(stream).map_err(ServerError::Io)?;
        run_client_events(&mut transport, events, window, false)
    }

    /// N pool clients over one shared executor merge to the sequential
    /// reference fold, on every registry executor.
    #[test]
    fn pool_merges_concurrent_clients_to_the_reference_fold() {
        let base = ServerConfig::quick().events(400);
        let clients = 4u64;
        let reference = merged_reference_aggregate(&base, clients);
        for name in EXECUTOR_NAMES {
            let executor = build_executor(name, &ExecutorSpec::new(2).capacity(64))
                .expect("registry executor");
            let service = crate::ExecutorService::new(executor.as_ref(), base.blocks);
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("local addr");
            let report = std::thread::scope(|scope| {
                let service = &service;
                let server =
                    scope.spawn(move || serve_pool(&listener, service, &PoolOptions::new(4, 8)));
                let mut acked = 0u64;
                let mut clients_joined = Vec::new();
                for client in 0..clients {
                    let events = generate_events(&client_config(&base, client));
                    clients_joined.push(scope.spawn(move || tcp_client(addr, &events, 16)));
                }
                for handle in clients_joined {
                    acked += handle
                        .join()
                        .expect("client thread")
                        .expect("client ok")
                        .acked;
                }
                let report = server.join().expect("server thread").expect("server ok");
                assert_eq!(report.answered, acked);
                report
            });
            assert_eq!(report.connections, clients);
            service.flush();
            let merged = service.aggregate(report.answered);
            assert_eq!(merged, reference, "pool aggregate diverged on {name}");
        }
    }

    /// A single poll-tier connection answers `run_client` exactly like the
    /// blocking `serve` loop: same acks, same aggregate.
    #[test]
    fn poll_single_connection_matches_blocking_serve() {
        let cfg = ServerConfig::quick().events(500);
        for name in EXECUTOR_NAMES {
            let executor = build_executor(name, &ExecutorSpec::new(2).capacity(64))
                .expect("registry executor");
            let service = crate::ExecutorService::new(executor.as_ref(), cfg.blocks);
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("local addr");
            let aggregate = std::thread::scope(|scope| {
                let service = &service;
                let server =
                    scope.spawn(move || serve_poll(&listener, service, &PollOptions::new(1, 1)));
                let client = scope.spawn(move || {
                    let stream = TcpStream::connect(addr).map_err(ServerError::Io)?;
                    let mut transport = TcpTransport::new(stream).map_err(ServerError::Io)?;
                    run_client(&mut transport, &cfg, 16)
                });
                let aggregate = client.join().expect("client thread").expect("client ok");
                let report = server.join().expect("server thread").expect("server ok");
                assert_eq!(report.events, cfg.events as u64);
                assert_eq!(report.failed, 0);
                aggregate
            });
            let reference = crate::reference_aggregate(&generate_events(&cfg), cfg.blocks);
            assert_eq!(aggregate, reference, "poll aggregate diverged on {name}");
        }
    }

    /// Many poll connections on few workers still merge to the reference
    /// fold, and admission is genuinely batched (fewer passes than events).
    #[test]
    fn poll_multiplexes_many_connections_on_few_workers() {
        let base = ServerConfig::quick().events(200);
        let clients = 12u64;
        let executor =
            build_executor("sharded-pdq", &ExecutorSpec::new(2).capacity(256)).expect("executor");
        let service = crate::ExecutorService::new(executor.as_ref(), base.blocks);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let report = std::thread::scope(|scope| {
            let service = &service;
            let server = scope.spawn(move || {
                serve_poll(&listener, service, &PollOptions::new(clients as usize, 2))
            });
            let mut joined = Vec::new();
            for client in 0..clients {
                let events = generate_events(&client_config(&base, client));
                joined.push(scope.spawn(move || tcp_client(addr, &events, 32)));
            }
            for handle in joined {
                handle.join().expect("client thread").expect("client ok");
            }
            server.join().expect("server thread").expect("server ok")
        });
        assert_eq!(report.connections, clients);
        assert_eq!(report.failed, 0);
        assert_eq!(report.events, clients * base.events as u64);
        assert!(
            report.batches < report.events,
            "admission was not batched: {} passes for {} events",
            report.batches,
            report.events
        );
        service.flush();
        let merged = service.aggregate(report.completed);
        assert_eq!(merged, merged_reference_aggregate(&base, clients));
    }

    /// A service whose admission refuses for a while: the poll loop must
    /// count a read suspension (executor backpressure became flow control)
    /// and still deliver every event once admission recovers.
    struct RefusingService<'a> {
        inner: crate::ExecutorService<'a>,
        refusals: AtomicUsize,
    }

    impl ProtocolService for RefusingService<'_> {
        fn call(&self, request: pdq_dsm::ProtocolEvent) -> TypedFuture<Reply> {
            self.inner.call(request)
        }
        fn flush(&self) {
            self.inner.flush();
        }
        fn aggregate(&self, completed: u64) -> ServerAggregate {
            self.inner.aggregate(completed)
        }
    }

    impl BatchService for RefusingService<'_> {
        fn prepare(
            &self,
            request: pdq_dsm::ProtocolEvent,
        ) -> (
            pdq_core::SyncKey,
            pdq_core::executor::Job,
            TypedHandle<Reply>,
        ) {
            self.inner.prepare(request)
        }
        fn try_admit(&self, batch: &mut SubmitBatch) -> Result<usize, ShutdownError> {
            let remaining = self.refusals.load(Ordering::Relaxed);
            if remaining > 0 {
                self.refusals.store(remaining - 1, Ordering::Relaxed);
                return Ok(0);
            }
            self.inner.try_admit(batch)
        }
    }

    #[test]
    fn refused_admission_suspends_reads_and_recovers() {
        let cfg = ServerConfig::quick().events(300);
        let executor =
            build_executor("pdq", &ExecutorSpec::new(1).capacity(512)).expect("executor");
        let service = RefusingService {
            inner: crate::ExecutorService::new(executor.as_ref(), cfg.blocks),
            refusals: AtomicUsize::new(50),
        };
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let events = generate_events(&cfg);
        let report = std::thread::scope(|scope| {
            let service = &service;
            let server =
                scope.spawn(move || serve_poll(&listener, service, &PollOptions::new(1, 1)));
            let client = scope.spawn({
                let events = &events;
                move || tcp_client(addr, events, 16)
            });
            let client_report = client.join().expect("client thread").expect("client ok");
            assert_eq!(client_report.acked, cfg.events as u64);
            server.join().expect("server thread").expect("server ok")
        });
        assert!(
            report.suspensions > 0,
            "refused admission never suspended socket reads"
        );
        assert_eq!(report.events, cfg.events as u64);
        service.flush();
        assert_eq!(
            service.aggregate(report.completed),
            crate::reference_aggregate(&events, cfg.blocks)
        );
    }

    /// Client 0 replays the base config and later clients diverge — the
    /// contract the CI single-client byte-diffs rely on.
    #[test]
    fn client_config_keeps_client_zero_identical() {
        let base = ServerConfig::quick();
        assert_eq!(client_config(&base, 0), base);
        let one = client_config(&base, 1);
        assert_ne!(one.seed, base.seed);
        assert_eq!(one.events, base.events);
        assert_eq!(client_config(&base, 1), one, "derivation must be pure");
        assert_ne!(client_config(&base, 2).seed, one.seed);
    }
}
