//! The typed request/response service in front of the protocol server.
//!
//! This is the layer the PDQ abstraction exists for: a server receiving a
//! firehose of fine-grain protocol *requests*, each handled by a keyed
//! handler that computes a *reply* — not an anonymous side effect. The
//! request lifecycle is
//!
//! ```text
//!   frame → decode → ProtocolService::call → submit_async_returning
//!     → handler runs (keyed, on a worker) → TypedFuture<Reply> resolves
//!     → encode → reply frame
//! ```
//!
//! [`ProtocolService`] is the dispatch surface (`call` returns a
//! [`TypedFuture`] of the [`Reply`]); [`ExecutorService`] implements it over
//! any [`Executor`] by submitting the [`ServerState`] handler with
//! `submit_async_returning`, so a handler panic or an executor shutdown
//! surfaces as a typed [`JobError`] instead of a poisoned counter. [`serve`]
//! drives a [`Transport`] against a service with a bounded window of
//! in-flight calls; [`run_client`] is the matching client: it streams the
//! deterministic event stream of a [`ServerConfig`], verifies every ack
//! against the reply digest it expects, and fetches the final
//! [`ServerAggregate`] — which is byte-identical to an in-process
//! [`run_server`](crate::run_server) run of the same config, whatever the
//! executor and whatever the transport.

use std::collections::VecDeque;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Instant;

use pdq_core::executor::{
    attach_returning, Executor, ExecutorExt, Job, JobError, SubmitBatch, TrySubmitError,
    TypedFuture, TypedHandle,
};
use pdq_core::{ShutdownError, SyncKey};
use pdq_dsm::{BlockAddr, Message, PageAddr, ProtocolEvent, Request};

use crate::metrics::ConnObs;
use crate::protocol_server::{
    generate_events, ServerAggregate, ServerConfig, ServerError, ServerState,
};
use crate::transport::{TcpTransport, Transport};
use crate::wal::WalWriter;

/// The typed response to one protocol request.
///
/// Replies are a pure function of the request (the shared per-block state is
/// mutated commutatively and folded into the final aggregate instead), so the
/// client can verify every ack independently of scheduling: the `digest`
/// echoes an FNV-1a hash of the encoded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// Event class answered: `0` access fault, `1` incoming message, `2`
    /// page operation.
    pub class: u8,
    /// FNV-1a digest of the encoded request, echoed back for verification.
    pub digest: u64,
}

impl Reply {
    /// The reply a well-behaved handler produces for `event`.
    pub fn for_event(event: &ProtocolEvent) -> Self {
        let class = match event {
            ProtocolEvent::AccessFault { .. } => 0,
            ProtocolEvent::Incoming { .. } => 1,
            ProtocolEvent::PageOp { .. } => 2,
        };
        let mut buf = Vec::with_capacity(32);
        encode_event(&mut buf, event);
        Self {
            class,
            digest: fnv1a(&buf),
        }
    }
}

/// A service that answers protocol requests with typed replies.
///
/// The server loop ([`serve`]) is written against this trait, so anything
/// that can turn a [`ProtocolEvent`] into a [`TypedFuture<Reply>`] can sit
/// behind any [`Transport`] — the executor-backed [`ExecutorService`] being
/// the implementation the paper's abstraction is about.
pub trait ProtocolService: Send + Sync {
    /// Dispatches one request; the returned future resolves with the reply
    /// once the handler has run (backpressure from a bounded executor queue
    /// keeps the future pending, parking the server loop's window).
    fn call(&self, request: ProtocolEvent) -> TypedFuture<Reply>;

    /// Blocks until every dispatched request has finished.
    fn flush(&self);

    /// Folds the service state into the order-independent aggregate;
    /// `completed` is the number of calls the driver observed resolving
    /// `Ok`.
    fn aggregate(&self, completed: u64) -> ServerAggregate;

    /// Exports the service's full counter state for a write-ahead-log
    /// snapshot record ([`crate::wal`]), or `None` if the service cannot
    /// (in which case [`serve_durable`] silently downgrades snapshots to
    /// plain sync points). Called after a `flush`, so the export reflects
    /// every dispatched call.
    fn snapshot_words(&self) -> Option<Vec<u64>> {
        None
    }
}

/// [`ProtocolService`] over any [`Executor`]: each request becomes a
/// value-returning job keyed by the event's [`SyncKey`],
/// submitted through `submit_async_returning`.
pub struct ExecutorService<'a> {
    executor: &'a dyn Executor,
    state: Arc<ServerState>,
}

impl std::fmt::Debug for ExecutorService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorService")
            .field("executor", &self.executor.name())
            .finish()
    }
}

impl<'a> ExecutorService<'a> {
    /// Creates a service over `executor` with fresh per-block state for
    /// `blocks` cache blocks.
    pub fn new(executor: &'a dyn Executor, blocks: u64) -> Self {
        Self {
            executor,
            state: Arc::new(ServerState::new(blocks)),
        }
    }
}

impl ProtocolService for ExecutorService<'_> {
    fn call(&self, request: ProtocolEvent) -> TypedFuture<Reply> {
        let state = Arc::clone(&self.state);
        self.executor
            .submit_async_returning(request.sync_key(), move || {
                state.handle(&request);
                Reply::for_event(&request)
            })
    }

    fn flush(&self) {
        self.executor.flush();
    }

    fn aggregate(&self, completed: u64) -> ServerAggregate {
        self.state.aggregate(completed)
    }

    fn snapshot_words(&self) -> Option<Vec<u64>> {
        Some(self.state.snapshot_words())
    }
}

/// A [`ProtocolService`] that can also expose its calls as *raw batch
/// entries* for amortized admission.
///
/// [`ProtocolService::call`] pays the executor's dispatch lock once per
/// request. The readiness-polled server ([`serve_poll`](crate::serve_poll))
/// instead drains every frame a readiness wakeup buffered, turns each into a
/// prepared entry ([`prepare`](Self::prepare)), and admits the whole slice
/// through **one** [`Executor::try_submit_batch`] call
/// ([`try_admit`](Self::try_admit)) — and, unlike `call`, a full bounded
/// queue *refuses* entries instead of parking them, so the server can convert
/// executor backpressure into per-connection TCP flow control.
pub trait BatchService: ProtocolService {
    /// Builds the raw entry for one request: the synchronization key, the
    /// boxed handler job, and the typed handle that resolves with the
    /// [`Reply`] once the job has run. The job is **not** submitted; push it
    /// into a [`SubmitBatch`] and admit via [`try_admit`](Self::try_admit).
    fn prepare(&self, request: ProtocolEvent) -> (SyncKey, Job, TypedHandle<Reply>);

    /// Admits as many entries from the front of `batch` as fit without
    /// blocking (one amortized dispatch pass) and returns how many were
    /// admitted. Refused entries stay in the batch for a later retry; their
    /// handles simply stay unresolved until the entries are admitted and run.
    ///
    /// # Errors
    ///
    /// [`ShutdownError`] if the executor has shut down — retrying can never
    /// succeed, so the caller must tear the connection down instead of
    /// spinning.
    fn try_admit(&self, batch: &mut SubmitBatch) -> Result<usize, ShutdownError>;
}

impl BatchService for ExecutorService<'_> {
    fn prepare(&self, request: ProtocolEvent) -> (SyncKey, Job, TypedHandle<Reply>) {
        let state = Arc::clone(&self.state);
        let key = request.sync_key();
        let (job, handle) = attach_returning(move || {
            state.handle(&request);
            Reply::for_event(&request)
        });
        (key, job, handle)
    }

    fn try_admit(&self, batch: &mut SubmitBatch) -> Result<usize, ShutdownError> {
        let admitted = self.executor.try_submit_batch(batch);
        if admitted == 0 && !batch.is_empty() {
            // `try_submit_batch` reports "nothing admitted" both for a full
            // queue and for a shut-down executor; probe one entry through
            // `try_submit` to tell the retryable case from the fatal one.
            if let Some((key, job)) = batch.pop_front() {
                match self.executor.try_submit(key, job) {
                    Ok(()) => return Ok(1),
                    Err(TrySubmitError::WouldBlock(job)) => {
                        batch.push_front(key, job);
                        return Ok(0);
                    }
                    Err(TrySubmitError::Shutdown(job)) => {
                        batch.push_front(key, job);
                        return Err(ShutdownError);
                    }
                }
            }
        }
        Ok(admitted)
    }
}

// ---------------------------------------------------------------------------
// Wire format (frame payloads; framing itself lives in `transport`)
// ---------------------------------------------------------------------------

/// Request frame: one protocol event follows.
const REQ_EVENT: u8 = 0x01;
/// Request frame: drain in-flight calls and reply with the aggregate.
const REQ_AGGREGATE: u8 = 0x02;
/// Request frame: ack every in-flight call, but send no aggregate. Clients
/// of a *shared* multi-connection server use this to collect their remaining
/// acks before closing — the shared aggregate is meaningless per connection,
/// so the pool/poll drivers fetch it once, after every client is done.
const REQ_DRAIN: u8 = 0x03;
/// Request frame: reply with the server's rendered metrics text. Served
/// in-band so a scraper can ride an existing protocol connection; the
/// sidecar listener ([`serve_metrics`](crate::serve_metrics)) is the
/// out-of-band alternative.
const REQ_METRICS: u8 = 0x04;
/// Reply frame: per-event acknowledgement.
const REP_ACK: u8 = 0x81;
/// Reply frame: the final aggregate.
const REP_AGGREGATE: u8 = 0x82;
/// Reply frame: rendered metrics text (UTF-8).
const REP_METRICS: u8 = 0x83;

/// Ack status: the handler ran and produced its reply.
pub(crate) const ACK_DONE: u8 = 0;
/// Ack status: the handler panicked; no reply payload is meaningful.
pub(crate) const ACK_PANICKED: u8 = 1;

/// A decoded request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireRequest {
    /// Handle one protocol event.
    Event(ProtocolEvent),
    /// Drain outstanding calls and return the aggregate.
    Aggregate,
    /// Ack every outstanding call without returning an aggregate.
    Drain,
    /// Return the server's rendered metrics text (empty when the serving
    /// loop has no observability attached).
    Metrics,
}

/// A decoded per-event acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Status byte: `0` done, `1` handler panicked.
    pub status: u8,
    /// The reply, when `status` is done.
    pub reply: Reply,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, ServerError> {
    let b = *bytes
        .get(*pos)
        .ok_or_else(|| ServerError::Protocol("frame truncated".into()))?;
    *pos += 1;
    Ok(b)
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, ServerError> {
    let end = pos
        .checked_add(8)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| ServerError::Protocol("frame truncated".into()))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(raw))
}

/// FNV-1a over a byte slice (the reply digest).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_message(buf: &mut Vec<u8>, msg: &Message) {
    match *msg {
        Message::Req {
            request,
            requester,
            block,
        } => {
            buf.push(0);
            buf.push(match request {
                Request::GetShared => 0,
                Request::GetExclusive => 1,
            });
            put_u64(buf, requester as u64);
            put_u64(buf, block.0);
        }
        Message::Invalidate { block, home } => {
            buf.push(1);
            put_u64(buf, block.0);
            put_u64(buf, home as u64);
        }
        Message::InvalAck { block, from } => {
            buf.push(2);
            put_u64(buf, block.0);
            put_u64(buf, from as u64);
        }
        Message::RecallShared { block, home } => {
            buf.push(3);
            put_u64(buf, block.0);
            put_u64(buf, home as u64);
        }
        Message::RecallExclusive { block, home } => {
            buf.push(4);
            put_u64(buf, block.0);
            put_u64(buf, home as u64);
        }
        Message::WritebackShared { block, from, value } => {
            buf.push(5);
            put_u64(buf, block.0);
            put_u64(buf, from as u64);
            put_u64(buf, value);
        }
        Message::WritebackExclusive { block, from, value } => {
            buf.push(6);
            put_u64(buf, block.0);
            put_u64(buf, from as u64);
            put_u64(buf, value);
        }
        Message::DataShared { block, value } => {
            buf.push(7);
            put_u64(buf, block.0);
            put_u64(buf, value);
        }
        Message::DataExclusive { block, value } => {
            buf.push(8);
            put_u64(buf, block.0);
            put_u64(buf, value);
        }
    }
}

fn decode_message(bytes: &[u8], pos: &mut usize) -> Result<Message, ServerError> {
    let tag = get_u8(bytes, pos)?;
    Ok(match tag {
        0 => {
            let request = match get_u8(bytes, pos)? {
                0 => Request::GetShared,
                1 => Request::GetExclusive,
                other => {
                    return Err(ServerError::Protocol(format!(
                        "unknown request kind {other}"
                    )))
                }
            };
            let requester = get_u64(bytes, pos)? as usize;
            let block = BlockAddr(get_u64(bytes, pos)?);
            Message::Req {
                request,
                requester,
                block,
            }
        }
        1 => Message::Invalidate {
            block: BlockAddr(get_u64(bytes, pos)?),
            home: get_u64(bytes, pos)? as usize,
        },
        2 => Message::InvalAck {
            block: BlockAddr(get_u64(bytes, pos)?),
            from: get_u64(bytes, pos)? as usize,
        },
        3 => Message::RecallShared {
            block: BlockAddr(get_u64(bytes, pos)?),
            home: get_u64(bytes, pos)? as usize,
        },
        4 => Message::RecallExclusive {
            block: BlockAddr(get_u64(bytes, pos)?),
            home: get_u64(bytes, pos)? as usize,
        },
        5 => Message::WritebackShared {
            block: BlockAddr(get_u64(bytes, pos)?),
            from: get_u64(bytes, pos)? as usize,
            value: get_u64(bytes, pos)?,
        },
        6 => Message::WritebackExclusive {
            block: BlockAddr(get_u64(bytes, pos)?),
            from: get_u64(bytes, pos)? as usize,
            value: get_u64(bytes, pos)?,
        },
        7 => Message::DataShared {
            block: BlockAddr(get_u64(bytes, pos)?),
            value: get_u64(bytes, pos)?,
        },
        8 => Message::DataExclusive {
            block: BlockAddr(get_u64(bytes, pos)?),
            value: get_u64(bytes, pos)?,
        },
        other => {
            return Err(ServerError::Protocol(format!(
                "unknown message tag {other}"
            )))
        }
    })
}

fn encode_event(buf: &mut Vec<u8>, event: &ProtocolEvent) {
    match *event {
        ProtocolEvent::AccessFault {
            block,
            write,
            token,
        } => {
            buf.push(0);
            put_u64(buf, block.0);
            buf.push(u8::from(write));
            put_u64(buf, token);
        }
        ProtocolEvent::Incoming { src, ref msg } => {
            buf.push(1);
            put_u64(buf, src as u64);
            encode_message(buf, msg);
        }
        ProtocolEvent::PageOp { page } => {
            buf.push(2);
            put_u64(buf, page.0);
        }
    }
}

fn decode_event(bytes: &[u8], pos: &mut usize) -> Result<ProtocolEvent, ServerError> {
    let tag = get_u8(bytes, pos)?;
    Ok(match tag {
        0 => ProtocolEvent::AccessFault {
            block: BlockAddr(get_u64(bytes, pos)?),
            write: get_u8(bytes, pos)? != 0,
            token: get_u64(bytes, pos)?,
        },
        1 => ProtocolEvent::Incoming {
            src: get_u64(bytes, pos)? as usize,
            msg: decode_message(bytes, pos)?,
        },
        2 => ProtocolEvent::PageOp {
            page: PageAddr(get_u64(bytes, pos)?),
        },
        other => return Err(ServerError::Protocol(format!("unknown event tag {other}"))),
    })
}

/// Encodes an event request frame payload.
pub fn encode_event_request(event: &ProtocolEvent) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.push(REQ_EVENT);
    encode_event(&mut buf, event);
    buf
}

/// Encodes the aggregate request frame payload.
pub fn encode_aggregate_request() -> Vec<u8> {
    vec![REQ_AGGREGATE]
}

/// Encodes the drain request frame payload.
pub fn encode_drain_request() -> Vec<u8> {
    vec![REQ_DRAIN]
}

/// Encodes the metrics request frame payload.
pub fn encode_metrics_request() -> Vec<u8> {
    vec![REQ_METRICS]
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// [`ServerError::Protocol`] on an unknown tag, a truncated frame, or
/// trailing bytes.
pub fn decode_request(frame: &[u8]) -> Result<WireRequest, ServerError> {
    let mut pos = 0;
    let decoded = match get_u8(frame, &mut pos)? {
        REQ_EVENT => WireRequest::Event(decode_event(frame, &mut pos)?),
        REQ_AGGREGATE => WireRequest::Aggregate,
        REQ_DRAIN => WireRequest::Drain,
        REQ_METRICS => WireRequest::Metrics,
        other => {
            return Err(ServerError::Protocol(format!(
                "unknown request tag {other:#x}"
            )))
        }
    };
    if pos != frame.len() {
        return Err(ServerError::Protocol(format!(
            "{} trailing bytes after request",
            frame.len() - pos
        )));
    }
    Ok(decoded)
}

pub(crate) fn encode_ack(ack: Ack) -> Vec<u8> {
    let mut buf = Vec::with_capacity(11);
    buf.push(REP_ACK);
    buf.push(ack.status);
    buf.push(ack.reply.class);
    put_u64(&mut buf, ack.reply.digest);
    buf
}

pub(crate) fn decode_ack(frame: &[u8]) -> Result<Ack, ServerError> {
    let mut pos = 0;
    if get_u8(frame, &mut pos)? != REP_ACK {
        return Err(ServerError::Protocol("expected an ack frame".into()));
    }
    let status = get_u8(frame, &mut pos)?;
    let class = get_u8(frame, &mut pos)?;
    let digest = get_u64(frame, &mut pos)?;
    if pos != frame.len() {
        return Err(ServerError::Protocol("trailing bytes after ack".into()));
    }
    Ok(Ack {
        status,
        reply: Reply { class, digest },
    })
}

pub(crate) fn encode_metrics_reply(text: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + text.len());
    buf.push(REP_METRICS);
    buf.extend_from_slice(text.as_bytes());
    buf
}

pub(crate) fn decode_metrics_reply(frame: &[u8]) -> Result<String, ServerError> {
    let mut pos = 0;
    if get_u8(frame, &mut pos)? != REP_METRICS {
        return Err(ServerError::Protocol("expected a metrics frame".into()));
    }
    String::from_utf8(frame[pos..].to_vec())
        .map_err(|e| ServerError::Protocol(format!("metrics text is not UTF-8: {e}")))
}

pub(crate) fn encode_aggregate_reply(agg: &ServerAggregate) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + 13 * 8);
    buf.push(REP_AGGREGATE);
    for word in [
        agg.events,
        agg.faults,
        agg.write_faults,
        agg.requests,
        agg.invalidations,
        agg.acks,
        agg.recalls,
        agg.writebacks,
        agg.grants,
        agg.page_ops,
        agg.block_checksum,
        agg.page_checksum,
        agg.completed,
    ] {
        put_u64(&mut buf, word);
    }
    buf
}

pub(crate) fn decode_aggregate_reply(frame: &[u8]) -> Result<ServerAggregate, ServerError> {
    let mut pos = 0;
    if get_u8(frame, &mut pos)? != REP_AGGREGATE {
        return Err(ServerError::Protocol("expected an aggregate frame".into()));
    }
    let agg = ServerAggregate {
        events: get_u64(frame, &mut pos)?,
        faults: get_u64(frame, &mut pos)?,
        write_faults: get_u64(frame, &mut pos)?,
        requests: get_u64(frame, &mut pos)?,
        invalidations: get_u64(frame, &mut pos)?,
        acks: get_u64(frame, &mut pos)?,
        recalls: get_u64(frame, &mut pos)?,
        writebacks: get_u64(frame, &mut pos)?,
        grants: get_u64(frame, &mut pos)?,
        page_ops: get_u64(frame, &mut pos)?,
        block_checksum: get_u64(frame, &mut pos)?,
        page_checksum: get_u64(frame, &mut pos)?,
        completed: get_u64(frame, &mut pos)?,
    };
    if pos != frame.len() {
        return Err(ServerError::Protocol(
            "trailing bytes after aggregate".into(),
        ));
    }
    Ok(agg)
}

// ---------------------------------------------------------------------------
// Server loop and client driver
// ---------------------------------------------------------------------------

/// Receives the next frame, mapping codec-level failures to
/// [`ServerError::Protocol`]: a stream that ends in the middle of a frame (a
/// short read / truncated frame) or carries an oversized length prefix is a
/// protocol violation by the peer, not an I/O fault of this host, so it must
/// not surface as a bare [`ServerError::Io`].
pub(crate) fn recv_frame(transport: &mut dyn Transport) -> Result<Option<Vec<u8>>, ServerError> {
    transport.recv().map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => ServerError::Protocol(format!("truncated frame: {e}")),
        std::io::ErrorKind::InvalidData => ServerError::Protocol(format!("malformed frame: {e}")),
        _ => ServerError::Io(e),
    })
}

/// Resolves the oldest in-flight call and encodes its ack.
fn resolve_ack(fut: TypedFuture<Reply>, completed: &mut u64) -> Result<Vec<u8>, ServerError> {
    match fut.wait() {
        Ok(reply) => {
            *completed += 1;
            Ok(encode_ack(Ack {
                status: ACK_DONE,
                reply,
            }))
        }
        Err(JobError::Panicked) => Ok(encode_ack(Ack {
            status: ACK_PANICKED,
            reply: Reply {
                class: 0xFF,
                digest: 0,
            },
        })),
        // The executor shut down underneath the server: surface the race as
        // a typed error instead of a lost reply.
        Err(JobError::Aborted) => Err(ServerError::Shutdown),
    }
}

/// Serves one framed connection: decodes request frames, dispatches events
/// through `service` with at most `window` calls in flight (acking the
/// oldest call whenever the window fills), and answers an aggregate request
/// by draining the window, flushing the service, and returning the
/// order-independent aggregate. Returns the number of events answered when
/// the peer closes the stream.
///
/// # Bounded per-connection buffering
///
/// `pending` never holds more than `window` in-flight calls: once the window
/// is full the loop stops reading new frames and blocks resolving the oldest
/// call, so executor backpressure (a full queue parking the submission)
/// propagates to the transport instead of accumulating unbounded
/// per-connection state — an open-loop client bursting frames faster than
/// handlers drain only fills the transport's buffers, never this loop's.
/// A peer that disconnects mid-stream (EOF or transport error) leaves at
/// most `window` abandoned calls: their handlers still run to completion on
/// the executor (keeping the service state consistent), but no reply is
/// encoded for them.
///
/// # Errors
///
/// [`ServerError::Io`] on transport failure, [`ServerError::Protocol`] on a
/// malformed, truncated, or oversized frame, [`ServerError::Shutdown`] if
/// the executor behind the service shuts down while calls are in flight.
pub fn serve(
    service: &dyn ProtocolService,
    transport: &mut dyn Transport,
    window: usize,
) -> Result<u64, ServerError> {
    serve_durable(service, transport, window, Durability::Off)
}

/// Durability configuration for [`serve_durable`]: whether, and how, the
/// serve loop write-ahead-logs every event before dispatching it.
#[derive(Debug)]
pub enum Durability<'a> {
    /// No logging — the configuration [`serve`] runs with.
    Off,
    /// Append every event to `wal` before the service sees it, and sync
    /// (durability barrier) every `sync_every` events.
    Log {
        /// The write-ahead log to append to.
        wal: &'a mut WalWriter,
        /// Events between sync points (clamped to at least 1).
        sync_every: u64,
    },
    /// As [`Durability::Log`], plus a full state snapshot every
    /// `snapshot_every` events to bound recovery replay. Snapshot cadences
    /// that are not multiples of `sync_every` get both record kinds at
    /// their own cadences; a snapshot always syncs.
    LogSnapshot {
        /// The write-ahead log to append to.
        wal: &'a mut WalWriter,
        /// Events between sync points (clamped to at least 1).
        sync_every: u64,
        /// Events between snapshot records (clamped to at least 1).
        snapshot_every: u64,
    },
}

/// [`serve`] with a [`Durability`] configuration: identical request/reply
/// behaviour, but with `Log`/`LogSnapshot` every event is appended to the
/// write-ahead log **before** `service.call` dispatches it — so a crash at
/// any point loses at most replies, never acknowledged-and-synced state.
///
/// The logging discipline:
///
/// * event `n` is appended, then dispatched, then (window permitting) acked;
/// * every `sync_every` events the log syncs (a durability barrier);
/// * every `snapshot_every` events the loop flushes the service, exports its
///   state ([`ProtocolService::snapshot_words`]) and appends a snapshot
///   record (which itself syncs); services that cannot export downgrade the
///   snapshot to a plain sync. The flush does **not** drain pending acks,
///   so durability never perturbs the reply cadence — reports and aggregates
///   stay byte-identical with and without a WAL;
/// * an aggregate request and a clean end of stream both sync, so a politely
///   closed connection always leaves a fully durable log.
///
/// # Errors
///
/// As [`serve`], plus [`ServerError::Io`] if appending to or syncing the
/// log fails — a durability failure tears the connection down rather than
/// silently serving without its log.
pub fn serve_durable(
    service: &dyn ProtocolService,
    transport: &mut dyn Transport,
    window: usize,
    durability: Durability<'_>,
) -> Result<u64, ServerError> {
    serve_observed(service, transport, window, durability, None)
}

/// [`serve_durable`] with optional observability: when `obs` is set, every
/// ack bumps the shared reply counter and records server-side latency (the
/// span from the event frame's decode to its ack's encode) into the reply
/// histogram, and a [`WireRequest::Metrics`] frame answers with the
/// rendered registry (an empty payload when `obs` is `None`, so probing an
/// unobserved server is well-formed rather than an error).
///
/// Recording is counters-only — it never changes what is read, dispatched,
/// or replied — so aggregates stay byte-identical with observability on
/// and off (the determinism contract CI byte-diffs).
///
/// # Errors
///
/// As [`serve_durable`].
pub fn serve_observed(
    service: &dyn ProtocolService,
    transport: &mut dyn Transport,
    window: usize,
    durability: Durability<'_>,
    obs: Option<&ConnObs>,
) -> Result<u64, ServerError> {
    let window = window.max(1);
    let (mut wal, sync_every, snapshot_every) = match durability {
        Durability::Off => (None, 0, 0),
        Durability::Log { wal, sync_every } => (Some(wal), sync_every.max(1), 0),
        Durability::LogSnapshot {
            wal,
            sync_every,
            snapshot_every,
        } => (Some(wal), sync_every.max(1), snapshot_every.max(1)),
    };
    let mut pending: VecDeque<TypedFuture<Reply>> = VecDeque::with_capacity(window);
    // Decode timestamps, index-parallel to `pending`; only maintained when
    // observability is on (stamps stay empty otherwise).
    let mut stamps: VecDeque<Instant> = VecDeque::new();
    let record_ack = |stamps: &mut VecDeque<Instant>| {
        if let (Some(obs), Some(stamp)) = (obs, stamps.pop_front()) {
            let latency = stamp.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            obs.reply(latency);
        }
    };
    let mut completed = 0u64;
    let mut answered = 0u64;
    loop {
        let Some(frame) = recv_frame(transport)? else {
            // Clean disconnect: abandon the in-flight replies. Dropping the
            // futures does not cancel the handlers — they run to completion
            // on the executor — so the service state stays consistent.
            if let Some(wal) = wal.as_deref_mut() {
                wal.sync().map_err(ServerError::Io)?;
            }
            drop(pending);
            return Ok(answered);
        };
        match decode_request(&frame)? {
            WireRequest::Event(event) => {
                let mut snapshot_due = false;
                if let Some(wal) = wal.as_deref_mut() {
                    let appended = wal.append_event(&event).map_err(ServerError::Io)?;
                    snapshot_due = snapshot_every > 0 && appended % snapshot_every == 0;
                    if !snapshot_due && appended % sync_every == 0 {
                        wal.sync().map_err(ServerError::Io)?;
                    }
                }
                if obs.is_some() {
                    stamps.push_back(Instant::now());
                }
                pending.push_back(service.call(event));
                debug_assert!(pending.len() <= window, "reply window overflowed");
                if pending.len() >= window {
                    let fut = pending.pop_front().expect("window is non-empty");
                    let ack = resolve_ack(fut, &mut completed)?;
                    record_ack(&mut stamps);
                    transport.send(&ack).map_err(ServerError::Io)?;
                    answered += 1;
                }
                if snapshot_due {
                    if let Some(wal) = wal.as_deref_mut() {
                        service.flush();
                        match service.snapshot_words() {
                            Some(words) => {
                                wal.append_snapshot(&words).map_err(ServerError::Io)?;
                            }
                            None => wal.sync().map_err(ServerError::Io)?,
                        }
                    }
                }
            }
            WireRequest::Drain => {
                while let Some(fut) = pending.pop_front() {
                    let ack = resolve_ack(fut, &mut completed)?;
                    record_ack(&mut stamps);
                    transport.send(&ack).map_err(ServerError::Io)?;
                    answered += 1;
                }
                transport.flush().map_err(ServerError::Io)?;
            }
            WireRequest::Metrics => {
                let text = obs.map(ConnObs::render).unwrap_or_default();
                transport
                    .send(&encode_metrics_reply(&text))
                    .map_err(ServerError::Io)?;
                transport.flush().map_err(ServerError::Io)?;
            }
            WireRequest::Aggregate => {
                while let Some(fut) = pending.pop_front() {
                    let ack = resolve_ack(fut, &mut completed)?;
                    record_ack(&mut stamps);
                    transport.send(&ack).map_err(ServerError::Io)?;
                    answered += 1;
                }
                service.flush();
                if let Some(wal) = wal.as_deref_mut() {
                    wal.sync().map_err(ServerError::Io)?;
                }
                let agg = service.aggregate(completed);
                transport
                    .send(&encode_aggregate_reply(&agg))
                    .map_err(ServerError::Io)?;
                transport.flush().map_err(ServerError::Io)?;
            }
        }
    }
}

/// Binds the service to one TCP connection: accepts a single client on
/// `listener` and serves it to completion.
///
/// This is the **one-shot** path — it accepts exactly one connection and
/// returns when that client disconnects. A real multi-client server is the
/// [`server`](crate::server) module's business ([`serve_pool`](crate::serve_pool)
/// / [`serve_poll`](crate::serve_poll)).
///
/// # Errors
///
/// As [`serve`], plus [`ServerError::Io`] if accepting the connection or
/// configuring the socket (`TCP_NODELAY`) fails — a socket the server could
/// not configure would silently serve with different latency behaviour, so
/// the failure surfaces instead of being swallowed.
pub fn serve_tcp_once(
    listener: &TcpListener,
    service: &dyn ProtocolService,
    window: usize,
) -> Result<u64, ServerError> {
    let (stream, _) = listener.accept().map_err(ServerError::Io)?;
    stream.set_nodelay(true).map_err(ServerError::Io)?;
    let mut transport = TcpTransport::new(stream).map_err(ServerError::Io)?;
    serve(service, &mut transport, window)
}

/// Streams the deterministic event stream of `cfg` to a protocol server over
/// `transport`, reading acks with a sliding window of `window` unanswered
/// requests, then requests and returns the final aggregate.
///
/// Every ack is verified against the reply digest the client expects for the
/// event at that position (the server answers strictly in request order).
/// `window` must be **larger than the server's reply window** — the server
/// only acks request `i` once request `i + server_window` has arrived, so a
/// client that stops sending to wait for acks earlier than that deadlocks
/// the pipeline.
///
/// # Errors
///
/// [`ServerError::Io`] on transport failure, [`ServerError::Protocol`] on a
/// malformed or mismatching reply.
pub fn run_client(
    transport: &mut dyn Transport,
    cfg: &ServerConfig,
    window: usize,
) -> Result<ServerAggregate, ServerError> {
    let window = window.max(1);
    let mut expected: VecDeque<Reply> = VecDeque::with_capacity(window);
    let mut panicked = 0u64;
    let read_ack = |transport: &mut dyn Transport,
                    expected: &mut VecDeque<Reply>,
                    panicked: &mut u64|
     -> Result<(), ServerError> {
        let frame = recv_frame(transport)?
            .ok_or_else(|| ServerError::Protocol("server closed before acking".into()))?;
        let ack = decode_ack(&frame)?;
        let want = expected
            .pop_front()
            .expect("an ack is only awaited for an outstanding request");
        match ack.status {
            ACK_DONE if ack.reply == want => Ok(()),
            ACK_DONE => Err(ServerError::Protocol(format!(
                "reply mismatch: got {:?}, expected {:?}",
                ack.reply, want
            ))),
            ACK_PANICKED => {
                *panicked += 1;
                Ok(())
            }
            other => Err(ServerError::Protocol(format!("unknown ack status {other}"))),
        }
    };
    for event in generate_events(cfg) {
        transport
            .send(&encode_event_request(&event))
            .map_err(ServerError::Io)?;
        expected.push_back(Reply::for_event(&event));
        if expected.len() >= window {
            read_ack(transport, &mut expected, &mut panicked)?;
        }
    }
    transport
        .send(&encode_aggregate_request())
        .map_err(ServerError::Io)?;
    transport.flush().map_err(ServerError::Io)?;
    while !expected.is_empty() {
        read_ack(transport, &mut expected, &mut panicked)?;
    }
    let frame = recv_frame(transport)?
        .ok_or_else(|| ServerError::Protocol("server closed before the aggregate".into()))?;
    let aggregate = decode_aggregate_reply(&frame)?;
    if aggregate.completed + panicked != cfg.events as u64 {
        return Err(ServerError::Protocol(format!(
            "server completed {} + {panicked} panicked of {} events",
            aggregate.completed, cfg.events
        )));
    }
    Ok(aggregate)
}

/// What one [`run_client_events`] run observed.
#[derive(Debug, Default, Clone)]
pub struct ClientReport {
    /// Events streamed to the server.
    pub sent: u64,
    /// Acks received and digest-verified.
    pub acked: u64,
    /// Acks reporting a panicked handler.
    pub panicked: u64,
    /// Per-reply latency samples (nanoseconds from sending a request to
    /// receiving its ack), in request order. Empty unless requested.
    pub latencies_ns: Vec<u64>,
}

/// Streams `events` to a protocol server, digest-verifies every ack, and
/// returns without fetching an aggregate — the client driver for
/// **multi-client** runs, where the server state is shared and a
/// per-connection aggregate snapshot would be racy and meaningless. The run
/// ends with a drain request so the server acks the tail of the window
/// before the client closes.
///
/// With `record_latency`, every request's send time is kept and the
/// ack-to-send delta recorded in [`ClientReport::latencies_ns`] — the soak
/// driver merges these across clients into its percentile report.
///
/// As with [`run_client`], `window` (the maximum unanswered requests before
/// the client stops to read an ack) must exceed the server's reply window on
/// windowed serve loops ([`serve`] / the pool tier); the poll tier acks
/// eagerly and accepts any window.
///
/// # Errors
///
/// [`ServerError::Io`] on transport failure, [`ServerError::Protocol`] on a
/// malformed or mismatching reply or a server that closes early.
pub fn run_client_events(
    transport: &mut dyn Transport,
    events: &[ProtocolEvent],
    window: usize,
    record_latency: bool,
) -> Result<ClientReport, ServerError> {
    let window = window.max(1);
    let mut expected: VecDeque<Reply> = VecDeque::with_capacity(window);
    let mut sent_at: VecDeque<Instant> = VecDeque::new();
    let mut report = ClientReport::default();
    let read_ack = |transport: &mut dyn Transport,
                    expected: &mut VecDeque<Reply>,
                    sent_at: &mut VecDeque<Instant>,
                    report: &mut ClientReport|
     -> Result<(), ServerError> {
        let frame = recv_frame(transport)?
            .ok_or_else(|| ServerError::Protocol("server closed before acking".into()))?;
        let ack = decode_ack(&frame)?;
        let want = expected
            .pop_front()
            .expect("an ack is only awaited for an outstanding request");
        if let Some(at) = sent_at.pop_front() {
            report
                .latencies_ns
                .push(u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        report.acked += 1;
        match ack.status {
            ACK_DONE if ack.reply == want => Ok(()),
            ACK_DONE => Err(ServerError::Protocol(format!(
                "reply mismatch: got {:?}, expected {:?}",
                ack.reply, want
            ))),
            ACK_PANICKED => {
                report.panicked += 1;
                Ok(())
            }
            other => Err(ServerError::Protocol(format!("unknown ack status {other}"))),
        }
    };
    for event in events {
        transport
            .send(&encode_event_request(event))
            .map_err(ServerError::Io)?;
        report.sent += 1;
        expected.push_back(Reply::for_event(event));
        if record_latency {
            sent_at.push_back(Instant::now());
        }
        if expected.len() >= window {
            read_ack(transport, &mut expected, &mut sent_at, &mut report)?;
        }
    }
    transport
        .send(&encode_drain_request())
        .map_err(ServerError::Io)?;
    transport.flush().map_err(ServerError::Io)?;
    while !expected.is_empty() {
        read_ack(transport, &mut expected, &mut sent_at, &mut report)?;
    }
    Ok(report)
}

/// Requests the server's metrics text in-band on an idle protocol
/// connection and returns it. Send this only while no acks are outstanding
/// (before streaming events, or after a drain): the metrics reply is not an
/// ack frame, so an interleaved probe would desynchronise a windowed client.
///
/// # Errors
///
/// [`ServerError::Io`] on transport failure, [`ServerError::Protocol`] on a
/// malformed reply or a server that closes instead of answering.
pub fn run_metrics_probe(transport: &mut dyn Transport) -> Result<String, ServerError> {
    transport
        .send(&encode_metrics_request())
        .map_err(ServerError::Io)?;
    transport.flush().map_err(ServerError::Io)?;
    let frame = recv_frame(transport)?
        .ok_or_else(|| ServerError::Protocol("server closed before the metrics reply".into()))?;
    decode_metrics_reply(&frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol_server::run_server;
    use crate::transport::loopback_pair;
    use pdq_core::executor::{build_executor, ExecutorSpec, EXECUTOR_NAMES};

    #[test]
    fn every_event_kind_roundtrips_through_the_codec() {
        let cfg = ServerConfig::quick();
        for event in generate_events(&cfg) {
            let frame = encode_event_request(&event);
            match decode_request(&frame).expect("well-formed frame") {
                WireRequest::Event(decoded) => assert_eq!(decoded, event),
                other => panic!("event decoded as {other:?}"),
            }
        }
    }

    /// Every [`WireRequest`] variant, with every [`Message`] kind spelled
    /// out explicitly (the generated-stream test above covers them only
    /// probabilistically), survives an encode/decode round trip.
    #[test]
    fn every_wire_request_variant_roundtrips_explicitly() {
        let block = BlockAddr(42);
        let messages = [
            Message::Req {
                request: Request::GetShared,
                requester: 3,
                block,
            },
            Message::Req {
                request: Request::GetExclusive,
                requester: 0,
                block,
            },
            Message::Invalidate { block, home: 5 },
            Message::InvalAck { block, from: 6 },
            Message::RecallShared { block, home: 7 },
            Message::RecallExclusive { block, home: 0 },
            Message::WritebackShared {
                block,
                from: 1,
                value: u64::MAX,
            },
            Message::WritebackExclusive {
                block,
                from: 2,
                value: 0,
            },
            Message::DataShared { block, value: 9 },
            Message::DataExclusive { block, value: 10 },
        ];
        let mut events = vec![
            ProtocolEvent::AccessFault {
                block,
                write: false,
                token: 0,
            },
            ProtocolEvent::AccessFault {
                block: BlockAddr(u64::MAX),
                write: true,
                token: u64::MAX,
            },
            ProtocolEvent::PageOp { page: PageAddr(0) },
            ProtocolEvent::PageOp {
                page: PageAddr(u64::MAX),
            },
        ];
        events.extend(
            messages
                .into_iter()
                .map(|msg| ProtocolEvent::Incoming { src: 4, msg }),
        );
        for event in events {
            let frame = encode_event_request(&event);
            match decode_request(&frame).expect("well-formed frame") {
                WireRequest::Event(decoded) => assert_eq!(decoded, event),
                other => panic!("{event:?} decoded as {other:?}"),
            }
        }
        assert_eq!(
            decode_request(&encode_aggregate_request()).expect("well-formed frame"),
            WireRequest::Aggregate
        );
        assert_eq!(
            decode_request(&encode_drain_request()).expect("well-formed frame"),
            WireRequest::Drain
        );
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        assert!(matches!(decode_request(&[]), Err(ServerError::Protocol(_))));
        assert!(matches!(
            decode_request(&[0x7F]),
            Err(ServerError::Protocol(_))
        ));
        // Truncated event body.
        let mut frame = encode_event_request(&ProtocolEvent::PageOp { page: PageAddr(3) });
        frame.truncate(4);
        assert!(matches!(
            decode_request(&frame),
            Err(ServerError::Protocol(_))
        ));
        // Trailing garbage.
        let mut frame = encode_aggregate_request();
        frame.push(0);
        assert!(matches!(
            decode_request(&frame),
            Err(ServerError::Protocol(_))
        ));
    }

    #[test]
    fn aggregates_roundtrip_through_the_codec() {
        let agg = ServerAggregate {
            events: 1,
            faults: 2,
            write_faults: 3,
            requests: 4,
            invalidations: 5,
            acks: 6,
            recalls: 7,
            writebacks: 8,
            grants: 9,
            page_ops: 10,
            block_checksum: 0xdead_beef,
            page_checksum: 0xcafe,
            completed: 11,
        };
        let decoded = decode_aggregate_reply(&encode_aggregate_reply(&agg)).unwrap();
        assert_eq!(decoded, agg);
    }

    #[test]
    fn loopback_service_matches_the_in_process_run_for_every_executor() {
        let cfg = ServerConfig::quick();
        for name in EXECUTOR_NAMES {
            let mut pool = build_executor(name, &ExecutorSpec::new(2).capacity(32))
                .expect("registry name builds");
            let reference = run_server(&*pool, &cfg, 64).expect("in-process run");
            let mut pool2 = build_executor(name, &ExecutorSpec::new(2).capacity(32))
                .expect("registry name builds");
            let service = ExecutorService::new(&*pool2, cfg.blocks);
            let (mut client_end, mut server_end) = loopback_pair();
            let aggregate = std::thread::scope(|scope| {
                let server = scope.spawn(move || serve(&service, &mut server_end, 64));
                let aggregate = run_client(&mut client_end, &cfg, 128).expect("client run");
                drop(client_end);
                server.join().expect("server thread").expect("server run");
                aggregate
            });
            assert_eq!(
                aggregate, reference,
                "{name}: transport changed the aggregate"
            );
            assert_eq!(
                aggregate.to_json_string(),
                reference.to_json_string(),
                "{name}: JSON diverged"
            );
            pool.shutdown();
            pool2.shutdown();
        }
    }

    #[test]
    fn durable_serve_matches_plain_serve_and_leaves_a_replayable_log() {
        use crate::wal::{replay, scan_bytes, SharedSink, WalWriter};
        let cfg = ServerConfig::quick();
        let pool = build_executor("pdq", &ExecutorSpec::new(2).capacity(32)).expect("pdq builds");
        let reference = run_server(&*pool, &cfg, 64).expect("in-process run");
        let pool2 = build_executor("pdq", &ExecutorSpec::new(2).capacity(32)).expect("pdq builds");
        let service = ExecutorService::new(&*pool2, cfg.blocks);
        let sink = SharedSink::new();
        let mut wal = WalWriter::new(sink.clone(), cfg.blocks).expect("header write");
        let (mut client_end, mut server_end) = loopback_pair();
        let aggregate = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                serve_durable(
                    &service,
                    &mut server_end,
                    64,
                    Durability::LogSnapshot {
                        wal: &mut wal,
                        sync_every: 32,
                        snapshot_every: 512,
                    },
                )
            });
            let aggregate = run_client(&mut client_end, &cfg, 128).expect("client run");
            drop(client_end);
            server.join().expect("server thread").expect("server run");
            aggregate
        });
        // Durability must not perturb the observable protocol: the aggregate
        // is byte-identical to the WAL-less in-process run.
        assert_eq!(aggregate, reference);
        // The log recovers cleanly, with a snapshot bounding the suffix, and
        // replays to the exact same aggregate.
        let recovery = scan_bytes(&sink.image());
        assert!(!recovery.torn);
        assert_eq!(recovery.total_events, cfg.events as u64);
        assert_eq!(recovery.synced_events, cfg.events as u64);
        let snapshot = recovery.snapshot.as_ref().expect("snapshot cadence hit");
        assert!(snapshot.events >= 512);
        assert!(recovery.suffix.len() < cfg.events);
        let pool3 = build_executor("spinlock", &ExecutorSpec::new(4).capacity(32)).expect("builds");
        let replayed = replay(&recovery, &*pool3).expect("replay");
        assert_eq!(replayed, reference);
        assert_eq!(replayed.to_json_string(), reference.to_json_string());
    }

    #[test]
    fn tcp_service_matches_the_loopback_service() {
        let cfg = ServerConfig::quick().events(800);
        let pool = build_executor("pdq", &ExecutorSpec::new(2).capacity(16)).expect("pdq builds");
        let service = ExecutorService::new(&*pool, cfg.blocks);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let tcp_aggregate = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_tcp_once(&listener, &service, 32));
            let stream = std::net::TcpStream::connect(addr).expect("connect");
            let mut transport = TcpTransport::new(stream).expect("transport");
            let aggregate = run_client(&mut transport, &cfg, 64).expect("client run");
            drop(transport);
            server.join().expect("server thread").expect("server run");
            aggregate
        });
        let pool2 = build_executor("pdq", &ExecutorSpec::new(2).capacity(16)).expect("pdq builds");
        let reference = run_server(&*pool2, &cfg, 32).expect("in-process run");
        assert_eq!(tcp_aggregate, reference);
    }

    #[test]
    fn serve_holds_at_most_window_calls_in_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Condvar;

        /// A service whose handlers block on a gate, so the number of `call`
        /// invocations the serve loop makes is directly observable while no
        /// reply can resolve.
        struct GatedService<'a> {
            executor: &'a dyn Executor,
            gate: Arc<(std::sync::Mutex<bool>, Condvar)>,
            calls: AtomicUsize,
        }
        impl ProtocolService for GatedService<'_> {
            fn call(&self, request: ProtocolEvent) -> TypedFuture<Reply> {
                self.calls.fetch_add(1, Ordering::SeqCst);
                let gate = Arc::clone(&self.gate);
                self.executor
                    .submit_async_returning(request.sync_key(), move || {
                        let (lock, cvar) = &*gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cvar.wait(open).unwrap();
                        }
                        Reply::for_event(&request)
                    })
            }
            fn flush(&self) {
                self.executor.flush();
            }
            fn aggregate(&self, completed: u64) -> ServerAggregate {
                ServerAggregate {
                    completed,
                    ..ServerAggregate::default()
                }
            }
        }

        const WINDOW: usize = 8;
        const FLOOD: usize = 100;
        let pool = build_executor("pdq", &ExecutorSpec::new(2).capacity(256)).expect("pdq builds");
        let service = GatedService {
            executor: &*pool,
            gate: Arc::new((std::sync::Mutex::new(false), Condvar::new())),
            calls: AtomicUsize::new(0),
        };
        let (mut client_end, mut server_end) = loopback_pair();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve(&service, &mut server_end, WINDOW));
            // Open-loop flood: every frame is buffered by the loopback
            // channel immediately, far ahead of the serve loop.
            let events = generate_events(&ServerConfig::quick().events(FLOOD));
            for event in &events {
                client_end.send(&encode_event_request(event)).unwrap();
            }
            // The serve loop must stall with exactly WINDOW calls in flight:
            // it cannot resolve the oldest (the gate is closed), so it must
            // not read further frames. Wait for the stall, then confirm the
            // count holds.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while service.calls.load(Ordering::SeqCst) < WINDOW {
                assert!(
                    std::time::Instant::now() < deadline,
                    "serve never filled its window"
                );
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
            assert_eq!(
                service.calls.load(Ordering::SeqCst),
                WINDOW,
                "serve buffered beyond its reply window"
            );
            // Open the gate; the whole flood drains and every ack verifies.
            {
                let (lock, cvar) = &*service.gate;
                *lock.lock().unwrap() = true;
                cvar.notify_all();
            }
            client_end.send(&encode_aggregate_request()).unwrap();
            for event in &events {
                let frame = client_end.recv().unwrap().expect("ack frame");
                let ack = decode_ack(&frame).expect("well-formed ack");
                assert_eq!(ack.reply, Reply::for_event(event));
            }
            let frame = client_end.recv().unwrap().expect("aggregate frame");
            let agg = decode_aggregate_reply(&frame).expect("aggregate reply");
            assert_eq!(agg.completed, FLOOD as u64);
            drop(client_end);
            let answered = server.join().expect("server thread").expect("server run");
            assert_eq!(answered, FLOOD as u64);
        });
        assert_eq!(service.calls.load(Ordering::SeqCst), FLOOD);
    }

    #[test]
    fn truncated_streams_surface_as_protocol_errors_not_io() {
        // A length prefix promising more than the peer delivers must reach
        // the serve loop as a typed protocol violation.
        let pool = build_executor("pdq", &ExecutorSpec::new(1)).expect("pdq builds");
        let service = ExecutorService::new(&*pool, 8);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let outcome = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_tcp_once(&listener, &service, 4));
            let mut stream = std::net::TcpStream::connect(addr).expect("connect");
            use std::io::Write;
            // Claim 100 payload bytes, deliver 3, then close.
            stream.write_all(&100u32.to_le_bytes()).expect("prefix");
            stream.write_all(&[1, 2, 3]).expect("partial payload");
            drop(stream);
            server.join().expect("server thread")
        });
        match outcome {
            Err(ServerError::Protocol(msg)) => {
                assert!(msg.contains("truncated"), "unexpected message: {msg}")
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }

    #[test]
    fn service_surfaces_executor_shutdown_as_a_typed_error() {
        let cfg = ServerConfig::quick().events(50);
        let mut pool = build_executor("pdq", &ExecutorSpec::new(1)).expect("pdq builds");
        pool.shutdown();
        let service = ExecutorService::new(&*pool, cfg.blocks);
        let (mut client_end, mut server_end) = loopback_pair();
        let outcome = std::thread::scope(|scope| {
            let server = scope.spawn(move || serve(&service, &mut server_end, 4));
            // Stream events; the server will fail on the first drained call.
            let _ = run_client(&mut client_end, &cfg, 8);
            drop(client_end);
            server.join().expect("server thread")
        });
        assert!(matches!(outcome, Err(ServerError::Shutdown)));
    }
}
