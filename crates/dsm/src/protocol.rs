//! The Stache coherence protocol, written against the PDQ interface.
//!
//! [`DsmProtocol`] holds the *functional* state of the whole cluster: per-node
//! fine-grain tags, per-home full-map directories, the pending-fault table,
//! and a verification word per cached copy so tests can check that the
//! protocol really keeps memory coherent. It knows nothing about time; the
//! machine models in `pdq-hurricane` drive it event by event, charge each
//! handler's occupancy from [`OccupancyModel`](crate::OccupancyModel), and
//! route the [`Outgoing`] messages through the simulated network.
//!
//! Every handler is keyed by the block address it manipulates
//! ([`ProtocolEvent::sync_key`]), which is exactly how the paper's modified
//! Stache protocol uses the PDQ: handlers for distinct blocks are free to run
//! in parallel, handlers for the same block are serialized by the queue, and
//! page-level operations use the `Sequential` key.

use std::collections::{HashMap, HashSet};

use pdq_sim::NodeId;

use crate::addr::{BlockAddr, BlockSize, HomeMap, PageAddr};
use crate::directory::{DirState, Directory, NodeSet};
use crate::msg::{Message, Outgoing, ProtocolEvent, Request};
use crate::tags::{Access, TagStore};

/// Configuration of the DSM protocol instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmConfig {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Coherence block size.
    pub block_size: BlockSize,
}

impl DsmConfig {
    /// Creates a configuration (nodes clamped to at least one).
    pub fn new(nodes: usize, block_size: BlockSize) -> Self {
        Self {
            nodes: nodes.max(1),
            block_size,
        }
    }
}

/// Classification of a handler execution, used by the occupancy model to
/// charge the right cost (the rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandlerClass {
    /// A block-access-fault handler: read fault state, send a request.
    Request,
    /// A home handler that reads or writes a memory block and sends a data
    /// message (the "reply" row of Table 1).
    ReplyData,
    /// A home handler that only updates directory state and sends control
    /// messages (invalidations, recalls) or defers the request.
    ReplyControl,
    /// A handler at a third node that only changes a tag and sends a control
    /// message (invalidation acknowledgements and similar).
    Control,
    /// A handler at the requester that installs arriving data and resumes the
    /// computation (the "response" row of Table 1).
    Response,
    /// A page allocation/deallocation handler (`Sequential` key).
    PageOp,
}

/// A stalled computation whose miss has been satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The token passed in the originating [`ProtocolEvent::AccessFault`].
    pub token: u64,
    /// The block whose miss completed.
    pub block: BlockAddr,
    /// Whether the satisfied access was a store.
    pub write: bool,
}

/// A stalled computation that must fault again (it needed write access but the
/// outstanding request only obtained a read-only copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Refault {
    /// The token of the stalled computation.
    pub token: u64,
    /// The block to fault on again.
    pub block: BlockAddr,
    /// Whether the access is a store (always `true` in practice).
    pub write: bool,
}

/// Everything a handler produced: messages to send, computations to wake,
/// faults to re-issue, and the number of block-sized memory accesses it made
/// (for the cost model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HandlerOutcome {
    /// How the handler should be charged by the occupancy model.
    pub class: Option<HandlerClass>,
    /// Messages to deliver (possibly to the sending node itself).
    pub outgoing: Vec<Outgoing>,
    /// Stalled computations whose miss is now satisfied.
    pub completions: Vec<Completion>,
    /// Stalled computations that must re-issue their fault.
    pub refaults: Vec<Refault>,
    /// Number of block-sized memory accesses the handler performed.
    pub memory_blocks: u32,
}

impl HandlerOutcome {
    fn with_class(class: HandlerClass) -> Self {
        Self {
            class: Some(class),
            ..Self::default()
        }
    }

    /// The handler class; defaults to [`HandlerClass::Control`] when the
    /// handler did nothing noteworthy.
    pub fn class(&self) -> HandlerClass {
        self.class.unwrap_or(HandlerClass::Control)
    }

    /// Whether any of the outgoing messages carries a data block.
    pub fn sends_data(&self) -> bool {
        self.outgoing.iter().any(|o| o.msg.carries_data())
    }
}

/// The result of checking whether a processor access hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessCheck {
    /// The access is permitted by the node's current tag.
    Hit,
    /// The access faults and a [`ProtocolEvent::AccessFault`] must be raised.
    Fault,
    /// The access faults and additionally the page has no frame allocated on
    /// this node yet, so a [`ProtocolEvent::PageOp`] must run first.
    FaultNeedsPage,
}

/// Aggregate protocol statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Access faults handled.
    pub faults: u64,
    /// Requests deferred because the directory entry was busy.
    pub deferred: u64,
    /// Messages produced by handlers.
    pub messages: u64,
    /// Data-carrying messages produced.
    pub data_messages: u64,
    /// Invalidations sent.
    pub invalidations: u64,
    /// Handlers executed, by class.
    pub handlers: HashMap<HandlerClass, u64>,
}

#[derive(Debug, Clone)]
struct PendingFault {
    tokens: Vec<(u64, bool)>,
}

/// Functional state of the Stache protocol for a whole cluster.
#[derive(Debug, Clone)]
pub struct DsmProtocol {
    config: DsmConfig,
    home: HomeMap,
    tags: Vec<TagStore>,
    dirs: Vec<Directory>,
    copies: Vec<HashMap<BlockAddr, u64>>,
    pending: Vec<HashMap<BlockAddr, PendingFault>>,
    pages: Vec<HashSet<PageAddr>>,
    stats: ProtocolStats,
}

impl DsmProtocol {
    /// Creates the protocol state for a cluster.
    pub fn new(config: DsmConfig) -> Self {
        let nodes = config.nodes;
        Self {
            config,
            home: HomeMap::new(nodes, config.block_size),
            tags: (0..nodes).map(TagStore::new).collect(),
            dirs: (0..nodes).map(|_| Directory::new()).collect(),
            copies: (0..nodes).map(|_| HashMap::new()).collect(),
            pending: (0..nodes).map(|_| HashMap::new()).collect(),
            pages: (0..nodes).map(|_| HashSet::new()).collect(),
            stats: ProtocolStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DsmConfig {
        self.config
    }

    /// The home-node map.
    pub fn home_map(&self) -> HomeMap {
        self.home
    }

    /// The home node of `block`.
    pub fn home_of(&self, block: BlockAddr) -> NodeId {
        self.home.home_of_block(block)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// The current access tag `node` holds for `block`.
    pub fn tag(&self, node: NodeId, block: BlockAddr) -> Access {
        self.tags[node].tag(block, self.home_of(block))
    }

    /// Whether `node` has a Stache page frame for `page` (home pages are
    /// always backed by home memory).
    pub fn page_allocated(&self, node: NodeId, page: PageAddr) -> bool {
        self.home.home_of_page(page) == node || self.pages[node].contains(&page)
    }

    /// Checks whether an access by `node` to `block` (a store if `write`)
    /// hits, faults, or additionally needs a page frame.
    pub fn check_access(&self, node: NodeId, block: BlockAddr, write: bool) -> AccessCheck {
        let home = self.home_of(block);
        if self.tags[node].access_hits(block, home, write) {
            AccessCheck::Hit
        } else if self.page_allocated(node, block.page(self.config.block_size)) {
            AccessCheck::Fault
        } else {
            AccessCheck::FaultNeedsPage
        }
    }

    /// Reads the verification word of `block` on `node`.
    ///
    /// Returns `None` if the node's tag does not permit reads (the model's
    /// equivalent of the hardware raising an access fault).
    pub fn cpu_read(&self, node: NodeId, block: BlockAddr) -> Option<u64> {
        let home = self.home_of(block);
        if !self.tags[node].access_hits(block, home, false) {
            return None;
        }
        Some(self.copies[node].get(&block).copied().unwrap_or(0))
    }

    /// Writes the verification word of `block` on `node`.
    ///
    /// Returns `false` (and writes nothing) if the node's tag does not permit
    /// stores.
    pub fn cpu_write(&mut self, node: NodeId, block: BlockAddr, value: u64) -> bool {
        let home = self.home_of(block);
        if !self.tags[node].access_hits(block, home, true) {
            return false;
        }
        self.copies[node].insert(block, value);
        true
    }

    /// Executes the protocol handler for `event` on `node`.
    pub fn handle(&mut self, node: NodeId, event: ProtocolEvent) -> HandlerOutcome {
        let outcome = match event {
            ProtocolEvent::AccessFault {
                block,
                write,
                token,
            } => self.handle_fault(node, block, write, token),
            ProtocolEvent::Incoming { src, msg } => self.handle_message(node, src, msg),
            ProtocolEvent::PageOp { page } => self.handle_page_op(node, page),
        };
        *self.stats.handlers.entry(outcome.class()).or_insert(0) += 1;
        self.stats.messages += outcome.outgoing.len() as u64;
        self.stats.data_messages += outcome
            .outgoing
            .iter()
            .filter(|o| o.msg.carries_data())
            .count() as u64;
        outcome
    }

    fn handle_fault(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        write: bool,
        token: u64,
    ) -> HandlerOutcome {
        self.stats.faults += 1;
        let mut outcome = HandlerOutcome::with_class(HandlerClass::Request);
        let home = self.home_of(block);

        // The fault may already be stale (an earlier handler granted access
        // between the fault being raised and being dispatched).
        if self.tags[node].access_hits(block, home, write) {
            outcome.completions.push(Completion {
                token,
                block,
                write,
            });
            return outcome;
        }

        match self.pending[node].get_mut(&block) {
            Some(pending) => {
                // Merge with the outstanding request for this block.
                pending.tokens.push((token, write));
            }
            None => {
                self.pending[node].insert(
                    block,
                    PendingFault {
                        tokens: vec![(token, write)],
                    },
                );
                let request = if write {
                    Request::GetExclusive
                } else {
                    Request::GetShared
                };
                outcome.outgoing.push(Outgoing {
                    dst: home,
                    msg: Message::Req {
                        request,
                        requester: node,
                        block,
                    },
                });
            }
        }
        outcome
    }

    fn handle_page_op(&mut self, node: NodeId, page: PageAddr) -> HandlerOutcome {
        self.pages[node].insert(page);
        HandlerOutcome::with_class(HandlerClass::PageOp)
    }

    fn handle_message(&mut self, node: NodeId, _src: NodeId, msg: Message) -> HandlerOutcome {
        match msg {
            Message::Req {
                request,
                requester,
                block,
            } => {
                let mut outcome = HandlerOutcome::default();
                self.handle_request(node, requester, request, block, &mut outcome);
                outcome
            }
            Message::Invalidate { block, home } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::Control);
                self.tags[node].set(block, Access::None);
                self.copies[node].remove(&block);
                outcome.outgoing.push(Outgoing {
                    dst: home,
                    msg: Message::InvalAck { block, from: node },
                });
                outcome
            }
            Message::InvalAck { block, from: _ } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::Control);
                let entry = self.dirs[node].entry_mut(block);
                let DirState::BusyInvalidating {
                    requester,
                    pending_acks,
                } = entry.state.clone()
                else {
                    debug_assert!(false, "InvalAck for a block not being invalidated");
                    return outcome;
                };
                if pending_acks > 1 {
                    entry.state = DirState::BusyInvalidating {
                        requester,
                        pending_acks: pending_acks - 1,
                    };
                    return outcome;
                }
                // Last acknowledgement: grant the writable copy from home memory.
                entry.state = DirState::Exclusive(requester);
                let value = self.copies[node].get(&block).copied().unwrap_or(0);
                outcome.class = Some(HandlerClass::ReplyData);
                outcome.memory_blocks += 1;
                outcome.outgoing.push(Outgoing {
                    dst: requester,
                    msg: Message::DataExclusive { block, value },
                });
                if requester != node {
                    self.tags[node].set(block, Access::None);
                }
                self.process_deferred(node, block, &mut outcome);
                outcome
            }
            Message::RecallShared { block, home } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::ReplyData);
                self.tags[node].set(block, Access::ReadOnly);
                let value = self.copies[node].get(&block).copied().unwrap_or(0);
                outcome.memory_blocks += 1;
                outcome.outgoing.push(Outgoing {
                    dst: home,
                    msg: Message::WritebackShared {
                        block,
                        from: node,
                        value,
                    },
                });
                outcome
            }
            Message::RecallExclusive { block, home } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::ReplyData);
                self.tags[node].set(block, Access::None);
                let value = self.copies[node].remove(&block).unwrap_or(0);
                outcome.memory_blocks += 1;
                outcome.outgoing.push(Outgoing {
                    dst: home,
                    msg: Message::WritebackExclusive {
                        block,
                        from: node,
                        value,
                    },
                });
                outcome
            }
            Message::WritebackShared { block, from, value } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::ReplyData);
                self.copies[node].insert(block, value);
                outcome.memory_blocks += 1;
                let entry = self.dirs[node].entry_mut(block);
                let DirState::BusyShared { requester, owner } = entry.state.clone() else {
                    debug_assert!(false, "WritebackShared for a block not being recalled");
                    return outcome;
                };
                debug_assert_eq!(owner, from);
                let mut sharers = NodeSet::empty();
                if owner != node {
                    sharers.insert(owner);
                }
                if requester != node {
                    sharers.insert(requester);
                }
                entry.state = DirState::Shared(sharers);
                if node != requester && node != owner {
                    self.tags[node].set(block, Access::ReadOnly);
                }
                outcome.outgoing.push(Outgoing {
                    dst: requester,
                    msg: Message::DataShared { block, value },
                });
                self.process_deferred(node, block, &mut outcome);
                outcome
            }
            Message::WritebackExclusive { block, from, value } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::ReplyData);
                self.copies[node].insert(block, value);
                outcome.memory_blocks += 1;
                let entry = self.dirs[node].entry_mut(block);
                let DirState::BusyRecall { requester, owner } = entry.state.clone() else {
                    debug_assert!(false, "WritebackExclusive for a block not being recalled");
                    return outcome;
                };
                debug_assert_eq!(owner, from);
                entry.state = DirState::Exclusive(requester);
                if requester != node {
                    self.tags[node].set(block, Access::None);
                }
                outcome.outgoing.push(Outgoing {
                    dst: requester,
                    msg: Message::DataExclusive { block, value },
                });
                self.process_deferred(node, block, &mut outcome);
                outcome
            }
            Message::DataShared { block, value } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::Response);
                self.tags[node].set(block, Access::ReadOnly);
                self.copies[node].insert(block, value);
                outcome.memory_blocks += 1;
                self.complete_pending(node, block, false, &mut outcome);
                outcome
            }
            Message::DataExclusive { block, value } => {
                let mut outcome = HandlerOutcome::with_class(HandlerClass::Response);
                self.tags[node].set(block, Access::ReadWrite);
                self.copies[node].insert(block, value);
                outcome.memory_blocks += 1;
                self.complete_pending(node, block, true, &mut outcome);
                outcome
            }
        }
    }

    /// Completes (or re-faults) the pending tokens of `node` for `block`,
    /// given that the node now holds access sufficient for `got_write`.
    fn complete_pending(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        got_write: bool,
        outcome: &mut HandlerOutcome,
    ) {
        let Some(pending) = self.pending[node].remove(&block) else {
            return;
        };
        for (token, needs_write) in pending.tokens {
            if needs_write && !got_write {
                outcome.refaults.push(Refault {
                    token,
                    block,
                    write: true,
                });
            } else {
                outcome.completions.push(Completion {
                    token,
                    block,
                    write: needs_write,
                });
            }
        }
    }

    /// Serves a coherence request at the home node, possibly deferring it.
    fn handle_request(
        &mut self,
        home: NodeId,
        requester: NodeId,
        request: Request,
        block: BlockAddr,
        outcome: &mut HandlerOutcome,
    ) {
        let state = self.dirs[home].entry(block).state;
        if state.is_busy() {
            self.dirs[home]
                .entry_mut(block)
                .deferred
                .push((requester, request));
            self.stats.deferred += 1;
            if outcome.class.is_none() {
                outcome.class = Some(HandlerClass::ReplyControl);
            }
            return;
        }

        match (request, state) {
            (Request::GetShared, DirState::Uncached) => {
                let value = self.copies[home].get(&block).copied().unwrap_or(0);
                self.dirs[home].entry_mut(block).state = if requester == home {
                    DirState::Uncached
                } else {
                    DirState::Shared(NodeSet::singleton(requester))
                };
                if requester != home {
                    self.tags[home].set(block, Access::ReadOnly);
                }
                outcome.memory_blocks += 1;
                outcome.class = Some(HandlerClass::ReplyData);
                outcome.outgoing.push(Outgoing {
                    dst: requester,
                    msg: Message::DataShared { block, value },
                });
            }
            (Request::GetShared, DirState::Shared(mut sharers)) => {
                let value = self.copies[home].get(&block).copied().unwrap_or(0);
                if requester != home {
                    sharers.insert(requester);
                }
                self.dirs[home].entry_mut(block).state = DirState::Shared(sharers);
                outcome.memory_blocks += 1;
                outcome.class = Some(HandlerClass::ReplyData);
                outcome.outgoing.push(Outgoing {
                    dst: requester,
                    msg: Message::DataShared { block, value },
                });
            }
            (Request::GetShared, DirState::Exclusive(owner)) => {
                if owner == requester {
                    // The requester already owns the block; re-grant.
                    let value = self.copies[home].get(&block).copied().unwrap_or(0);
                    outcome.memory_blocks += 1;
                    outcome.class = Some(HandlerClass::ReplyData);
                    outcome.outgoing.push(Outgoing {
                        dst: requester,
                        msg: Message::DataExclusive { block, value },
                    });
                } else {
                    self.dirs[home].entry_mut(block).state =
                        DirState::BusyShared { requester, owner };
                    outcome.class = Some(HandlerClass::ReplyControl);
                    outcome.outgoing.push(Outgoing {
                        dst: owner,
                        msg: Message::RecallShared { block, home },
                    });
                }
            }
            (Request::GetExclusive, DirState::Uncached) => {
                let value = self.copies[home].get(&block).copied().unwrap_or(0);
                self.dirs[home].entry_mut(block).state = DirState::Exclusive(requester);
                if requester != home {
                    self.tags[home].set(block, Access::None);
                }
                outcome.memory_blocks += 1;
                outcome.class = Some(HandlerClass::ReplyData);
                outcome.outgoing.push(Outgoing {
                    dst: requester,
                    msg: Message::DataExclusive { block, value },
                });
            }
            (Request::GetExclusive, DirState::Shared(sharers)) => {
                let mut targets = sharers;
                targets.remove(requester);
                if requester != home {
                    self.tags[home].set(block, Access::None);
                }
                if targets.is_empty() {
                    let value = self.copies[home].get(&block).copied().unwrap_or(0);
                    self.dirs[home].entry_mut(block).state = DirState::Exclusive(requester);
                    outcome.memory_blocks += 1;
                    outcome.class = Some(HandlerClass::ReplyData);
                    outcome.outgoing.push(Outgoing {
                        dst: requester,
                        msg: Message::DataExclusive { block, value },
                    });
                } else {
                    self.dirs[home].entry_mut(block).state = DirState::BusyInvalidating {
                        requester,
                        pending_acks: targets.len(),
                    };
                    outcome.class = Some(HandlerClass::ReplyControl);
                    for target in targets.iter() {
                        self.stats.invalidations += 1;
                        outcome.outgoing.push(Outgoing {
                            dst: target,
                            msg: Message::Invalidate { block, home },
                        });
                    }
                }
            }
            (Request::GetExclusive, DirState::Exclusive(owner)) => {
                if owner == requester {
                    let value = self.copies[home].get(&block).copied().unwrap_or(0);
                    outcome.memory_blocks += 1;
                    outcome.class = Some(HandlerClass::ReplyData);
                    outcome.outgoing.push(Outgoing {
                        dst: requester,
                        msg: Message::DataExclusive { block, value },
                    });
                } else {
                    self.dirs[home].entry_mut(block).state =
                        DirState::BusyRecall { requester, owner };
                    outcome.class = Some(HandlerClass::ReplyControl);
                    outcome.outgoing.push(Outgoing {
                        dst: owner,
                        msg: Message::RecallExclusive { block, home },
                    });
                }
            }
            // `is_busy` states were handled above.
            (_, state) => {
                debug_assert!(!state.is_busy(), "busy states handled before the match");
            }
        }
    }

    /// If the block's entry returned to a stable state and requests were
    /// deferred, serve the oldest one now.
    fn process_deferred(&mut self, home: NodeId, block: BlockAddr, outcome: &mut HandlerOutcome) {
        loop {
            let entry = self.dirs[home].entry_mut(block);
            if entry.state.is_busy() || entry.deferred.is_empty() {
                return;
            }
            let (requester, request) = entry.deferred.remove(0);
            self.handle_request(home, requester, request, block, outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    const B: BlockAddr = BlockAddr(130); // page 2 under 64-byte blocks -> home 2 % nodes

    fn protocol(nodes: usize) -> DsmProtocol {
        DsmProtocol::new(DsmConfig::new(nodes, BlockSize::B64))
    }

    /// Drives the protocol with an instantaneous network until no messages or
    /// refaults remain. Returns the total number of handlers executed.
    fn run_to_quiescence(p: &mut DsmProtocol, initial: Vec<(NodeId, ProtocolEvent)>) -> u64 {
        let mut queue: VecDeque<(NodeId, ProtocolEvent)> = initial.into();
        let mut handlers = 0;
        while let Some((node, event)) = queue.pop_front() {
            handlers += 1;
            assert!(handlers < 10_000, "protocol did not quiesce");
            let outcome = p.handle(node, event);
            for out in outcome.outgoing {
                queue.push_back((
                    out.dst,
                    ProtocolEvent::Incoming {
                        src: node,
                        msg: out.msg,
                    },
                ));
            }
            for refault in outcome.refaults {
                queue.push_back((
                    node,
                    ProtocolEvent::AccessFault {
                        block: refault.block,
                        write: refault.write,
                        token: refault.token,
                    },
                ));
            }
        }
        handlers
    }

    fn fault(node: NodeId, block: BlockAddr, write: bool, token: u64) -> (NodeId, ProtocolEvent) {
        (
            node,
            ProtocolEvent::AccessFault {
                block,
                write,
                token,
            },
        )
    }

    #[test]
    fn home_node_hits_its_own_memory() {
        let p = protocol(4);
        let home = p.home_of(B);
        assert_eq!(p.check_access(home, B, true), AccessCheck::Hit);
        assert_eq!(p.cpu_read(home, B), Some(0));
    }

    #[test]
    fn remote_access_faults_and_needs_a_page_frame() {
        let p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        assert_eq!(
            p.check_access(remote, B, false),
            AccessCheck::FaultNeedsPage
        );
    }

    #[test]
    fn remote_read_miss_grants_a_read_only_copy() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        // Home writes 99 into the block, then the remote node reads it.
        assert!(p.cpu_write(home, B, 99));
        run_to_quiescence(&mut p, vec![fault(remote, B, false, 7)]);
        assert_eq!(p.tag(remote, B), Access::ReadOnly);
        assert_eq!(p.cpu_read(remote, B), Some(99));
        // Home was downgraded to read-only (a later home write must fault).
        assert_eq!(p.tag(home, B), Access::ReadOnly);
        assert_eq!(p.check_access(home, B, true), AccessCheck::Fault);
    }

    #[test]
    fn remote_write_miss_takes_ownership_away_from_home() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        run_to_quiescence(&mut p, vec![fault(remote, B, true, 1)]);
        assert_eq!(p.tag(remote, B), Access::ReadWrite);
        assert_eq!(p.tag(home, B), Access::None);
        assert!(p.cpu_write(remote, B, 1234));
        assert_eq!(p.cpu_read(home, B), None, "home lost read access");
    }

    #[test]
    fn three_hop_read_returns_the_writers_value() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let writer = (home + 1) % 4;
        let reader = (home + 2) % 4;
        run_to_quiescence(&mut p, vec![fault(writer, B, true, 1)]);
        assert!(p.cpu_write(writer, B, 42));
        // Reader misses; home recalls the block from the writer.
        run_to_quiescence(&mut p, vec![fault(reader, B, false, 2)]);
        assert_eq!(p.cpu_read(reader, B), Some(42));
        assert_eq!(p.tag(writer, B), Access::ReadOnly, "writer was downgraded");
        assert_eq!(
            p.cpu_read(home, B),
            Some(42),
            "home memory was updated by the writeback"
        );
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let a = (home + 1) % 4;
        let b = (home + 2) % 4;
        run_to_quiescence(&mut p, vec![fault(a, B, false, 1), fault(b, B, false, 2)]);
        assert_eq!(p.tag(a, B), Access::ReadOnly);
        assert_eq!(p.tag(b, B), Access::ReadOnly);
        // Home itself now writes: needs exclusive access, invalidating a and b.
        run_to_quiescence(&mut p, vec![fault(home, B, true, 3)]);
        assert_eq!(p.tag(home, B), Access::ReadWrite);
        assert_eq!(p.tag(a, B), Access::None);
        assert_eq!(p.tag(b, B), Access::None);
        assert!(p.stats().invalidations >= 2);
    }

    #[test]
    fn read_then_write_by_same_node_refaults_for_ownership() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        run_to_quiescence(&mut p, vec![fault(remote, B, false, 1)]);
        assert_eq!(p.tag(remote, B), Access::ReadOnly);
        // Now a store: must upgrade to read-write.
        run_to_quiescence(&mut p, vec![fault(remote, B, true, 2)]);
        assert_eq!(p.tag(remote, B), Access::ReadWrite);
    }

    #[test]
    fn concurrent_faults_on_one_block_both_complete() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let a = (home + 1) % 4;
        let b = (home + 2) % 4;
        // Both nodes want to write the same block "at the same time".
        run_to_quiescence(&mut p, vec![fault(a, B, true, 1), fault(b, B, true, 2)]);
        // Exactly one of them can end with write access; the protocol must not
        // leave both writable.
        let writable = [a, b]
            .iter()
            .filter(|n| p.tag(**n, B) == Access::ReadWrite)
            .count();
        assert_eq!(writable, 1, "exactly one node may hold a writable copy");
    }

    #[test]
    fn requests_arriving_at_a_busy_entry_are_deferred_and_eventually_served() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let a = (home + 1) % 4;
        let b = (home + 2) % 4;
        let c = (home + 3) % 4;
        // Three nodes race to write the same block. With three requests in
        // flight, at least one arrives while the entry is busy recalling the
        // block and must be deferred; all of them must eventually be served.
        run_to_quiescence(
            &mut p,
            vec![
                fault(a, B, true, 1),
                fault(b, B, true, 2),
                fault(c, B, true, 3),
            ],
        );
        let writable = [a, b, c]
            .iter()
            .filter(|n| p.tag(**n, B) == Access::ReadWrite)
            .count();
        assert_eq!(writable, 1, "exactly one node may hold a writable copy");
        assert!(
            p.stats().deferred >= 1,
            "at least one request must have been deferred"
        );
        // Every node can still obtain the block afterwards.
        run_to_quiescence(&mut p, vec![fault(a, B, false, 9)]);
        assert!(p.cpu_read(a, B).is_some());
    }

    #[test]
    fn pending_faults_on_one_node_are_merged() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        // Two CPUs of the same node fault on the same block before the first
        // request completes: only one request message may be sent.
        let f1 = p.handle(
            remote,
            ProtocolEvent::AccessFault {
                block: B,
                write: false,
                token: 1,
            },
        );
        let f2 = p.handle(
            remote,
            ProtocolEvent::AccessFault {
                block: B,
                write: false,
                token: 2,
            },
        );
        assert_eq!(f1.outgoing.len(), 1);
        assert!(
            f2.outgoing.is_empty(),
            "second fault must piggyback on the first request"
        );
        // Deliver the request and the reply; both tokens complete.
        let mut completions = Vec::new();
        let mut queue: VecDeque<(NodeId, Message)> =
            f1.outgoing.iter().map(|o| (o.dst, o.msg)).collect();
        while let Some((dst, msg)) = queue.pop_front() {
            let out = p.handle(dst, ProtocolEvent::Incoming { src: remote, msg });
            completions.extend(out.completions.iter().map(|c| c.token));
            queue.extend(out.outgoing.iter().map(|o| (o.dst, o.msg)));
        }
        completions.sort_unstable();
        assert_eq!(completions, vec![1, 2]);
    }

    #[test]
    fn stale_fault_completes_immediately() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        run_to_quiescence(&mut p, vec![fault(remote, B, false, 1)]);
        // A second read fault raised before the tag change became visible is
        // dispatched afterwards: it completes without sending anything.
        let out = p.handle(
            remote,
            ProtocolEvent::AccessFault {
                block: B,
                write: false,
                token: 9,
            },
        );
        assert!(out.outgoing.is_empty());
        assert_eq!(
            out.completions,
            vec![Completion {
                token: 9,
                block: B,
                write: false
            }]
        );
    }

    #[test]
    fn page_op_allocates_a_frame() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        let page = B.page(BlockSize::B64);
        assert!(!p.page_allocated(remote, page));
        let out = p.handle(remote, ProtocolEvent::PageOp { page });
        assert_eq!(out.class(), HandlerClass::PageOp);
        assert!(p.page_allocated(remote, page));
        assert_eq!(p.check_access(remote, B, false), AccessCheck::Fault);
    }

    #[test]
    fn handler_classes_are_recorded_in_stats() {
        let mut p = protocol(4);
        let home = p.home_of(B);
        let remote = (home + 1) % 4;
        run_to_quiescence(&mut p, vec![fault(remote, B, false, 1)]);
        let stats = p.stats();
        assert_eq!(stats.faults, 1);
        assert!(
            stats
                .handlers
                .get(&HandlerClass::Request)
                .copied()
                .unwrap_or(0)
                >= 1
        );
        assert!(
            stats
                .handlers
                .get(&HandlerClass::ReplyData)
                .copied()
                .unwrap_or(0)
                >= 1
        );
        assert!(
            stats
                .handlers
                .get(&HandlerClass::Response)
                .copied()
                .unwrap_or(0)
                >= 1
        );
        assert!(stats.messages >= 2);
        assert!(stats.data_messages >= 1);
    }

    #[test]
    fn outcome_sends_data_detects_data_messages() {
        let mut outcome = HandlerOutcome::with_class(HandlerClass::ReplyData);
        assert!(!outcome.sends_data());
        outcome.outgoing.push(Outgoing {
            dst: 0,
            msg: Message::DataShared { block: B, value: 0 },
        });
        assert!(outcome.sends_data());
    }

    #[test]
    fn sequential_writers_from_every_node_stay_coherent() {
        // A randomized-ish churn test: nodes take turns acquiring write access
        // and incrementing the block's value; the final value must equal the
        // number of increments (no lost updates).
        let mut p = protocol(4);
        let mut expected = 0u64;
        for round in 0..20u64 {
            let node = (round % 4) as NodeId;
            run_to_quiescence(&mut p, vec![fault(node, B, true, round)]);
            let v = p.cpu_read(node, B).expect("writer must have read access");
            assert!(p.cpu_write(node, B, v + 1));
            expected += 1;
        }
        // Read back from the home node.
        let home = p.home_of(B);
        run_to_quiescence(&mut p, vec![fault(home, B, false, 999)]);
        assert_eq!(p.cpu_read(home, B), Some(expected));
    }
}
