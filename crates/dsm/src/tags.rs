//! Fine-grain access-control tags.
//!
//! Every node keeps a per-block access tag; loads and stores that lack the
//! required access right raise a *block access fault*, which is one of the two
//! protocol event types the PDQ collects (the other being network messages).
//! In the Hurricane hardware these tags live in the custom device ("Fine-Grain
//! Tags" in Figures 5 and 6).

use std::collections::HashMap;

use pdq_sim::NodeId;

use crate::addr::BlockAddr;

/// The access right a node currently holds for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Access {
    /// No access: any load or store faults.
    None,
    /// Read-only access: stores fault.
    ReadOnly,
    /// Read-write access.
    ReadWrite,
}

impl Access {
    /// Whether this right permits the given operation.
    pub fn permits(&self, write: bool) -> bool {
        match self {
            Access::None => false,
            Access::ReadOnly => !write,
            Access::ReadWrite => true,
        }
    }
}

/// The fine-grain tag store of one node.
///
/// A node's tag for a block defaults to [`Access::ReadWrite`] for blocks whose
/// home is that node (home memory starts out exclusively owned by the home)
/// and [`Access::None`] for remote blocks.
#[derive(Debug, Clone, Default)]
pub struct TagStore {
    node: NodeId,
    overrides: HashMap<BlockAddr, Access>,
}

impl TagStore {
    /// Creates the tag store of `node`.
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            overrides: HashMap::new(),
        }
    }

    /// The node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current tag of `block`, given the block's home node.
    pub fn tag(&self, block: BlockAddr, home: NodeId) -> Access {
        self.overrides
            .get(&block)
            .copied()
            .unwrap_or(if home == self.node {
                Access::ReadWrite
            } else {
                Access::None
            })
    }

    /// Sets the tag of `block`.
    pub fn set(&mut self, block: BlockAddr, access: Access) {
        self.overrides.insert(block, access);
    }

    /// Whether an access (`write` selects store vs. load) hits, i.e. needs no
    /// protocol action.
    pub fn access_hits(&self, block: BlockAddr, home: NodeId, write: bool) -> bool {
        self.tag(block, home).permits(write)
    }

    /// Number of blocks whose tag differs from the default.
    pub fn modified_blocks(&self) -> usize {
        self.overrides.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_permissions() {
        assert!(!Access::None.permits(false));
        assert!(!Access::None.permits(true));
        assert!(Access::ReadOnly.permits(false));
        assert!(!Access::ReadOnly.permits(true));
        assert!(Access::ReadWrite.permits(true));
    }

    #[test]
    fn home_blocks_default_to_read_write() {
        let tags = TagStore::new(2);
        let block = BlockAddr(10);
        assert_eq!(tags.tag(block, 2), Access::ReadWrite);
        assert!(tags.access_hits(block, 2, true));
    }

    #[test]
    fn remote_blocks_default_to_none() {
        let tags = TagStore::new(1);
        let block = BlockAddr(10);
        assert_eq!(tags.tag(block, 2), Access::None);
        assert!(!tags.access_hits(block, 2, false));
    }

    #[test]
    fn set_overrides_the_default() {
        let mut tags = TagStore::new(1);
        let block = BlockAddr(10);
        tags.set(block, Access::ReadOnly);
        assert!(tags.access_hits(block, 2, false));
        assert!(!tags.access_hits(block, 2, true));
        tags.set(block, Access::ReadWrite);
        assert!(tags.access_hits(block, 2, true));
        assert_eq!(tags.modified_blocks(), 1);
    }

    #[test]
    fn home_can_lose_access() {
        let mut tags = TagStore::new(0);
        let block = BlockAddr(5);
        tags.set(block, Access::None);
        assert!(!tags.access_hits(block, 0, false));
    }
}
