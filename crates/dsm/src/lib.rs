//! # pdq-dsm: fine-grain distributed shared memory substrate
//!
//! The DSM substrate the paper evaluates PDQ on: a Stache-like full-map
//! invalidation protocol ([`DsmProtocol`]) written against the PDQ interface
//! (every handler is keyed by the block it manipulates), the fine-grain
//! access-control tags ([`TagStore`]), the full-map [`Directory`], and the
//! per-machine protocol [`OccupancyModel`] that reproduces Table 1.
//!
//! The protocol here is *functional*: it tracks tags, directory state, and a
//! verification word per copy so coherence can be tested end-to-end. Timing
//! (occupancy, queueing, network latency) is layered on top by the machine
//! models in `pdq-hurricane`.
//!
//! ```
//! use pdq_dsm::{AccessCheck, BlockAddr, BlockSize, DsmConfig, DsmProtocol, ProtocolEvent};
//!
//! let mut dsm = DsmProtocol::new(DsmConfig::new(2, BlockSize::B64));
//! let block = BlockAddr(0);
//! assert_eq!(dsm.home_of(block), 0);
//! // Node 1 reading node 0's memory faults...
//! assert_eq!(dsm.check_access(1, block, false), AccessCheck::FaultNeedsPage);
//! // ...and the fault handler produces a request message for the home node.
//! dsm.handle(1, ProtocolEvent::PageOp { page: block.page(BlockSize::B64) });
//! let outcome = dsm.handle(1, ProtocolEvent::AccessFault { block, write: false, token: 0 });
//! assert_eq!(outcome.outgoing.len(), 1);
//! assert_eq!(outcome.outgoing[0].dst, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod directory;
mod msg;
mod occupancy;
mod protocol;
mod tags;

pub use addr::{BlockAddr, BlockSize, GlobalAddr, HomeMap, PageAddr, PAGE_BYTES};
pub use directory::{DirEntry, DirState, Directory, NodeSet};
pub use msg::{Message, Outgoing, ProtocolEvent, Request};
pub use occupancy::{MissBreakdown, OccupancyModel, ProtocolEngine, MULT_SCHEDULING_OVERHEAD};
pub use protocol::{
    AccessCheck, Completion, DsmConfig, DsmProtocol, HandlerClass, HandlerOutcome, ProtocolStats,
    Refault,
};
pub use tags::{Access, TagStore};

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Drive the protocol to quiescence with an instantaneous network.
    fn quiesce(p: &mut DsmProtocol, mut queue: VecDeque<(usize, ProtocolEvent)>) {
        let mut steps = 0;
        while let Some((node, event)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "protocol failed to quiesce");
            let out = p.handle(node, event);
            for o in out.outgoing {
                queue.push_back((
                    o.dst,
                    ProtocolEvent::Incoming {
                        src: node,
                        msg: o.msg,
                    },
                ));
            }
            for r in out.refaults {
                queue.push_back((
                    node,
                    ProtocolEvent::AccessFault {
                        block: r.block,
                        write: r.write,
                        token: r.token,
                    },
                ));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Single-writer / multiple-reader invariant: after any sequence of
        /// read/write faults has been fully processed, at most one node holds
        /// write access to a block, and if any node holds write access then no
        /// other node holds any access.
        #[test]
        fn coherence_invariant_holds(ops in proptest::collection::vec((0usize..4, 0u64..6, any::<bool>()), 1..60)) {
            let mut p = DsmProtocol::new(DsmConfig::new(4, BlockSize::B64));
            for (i, (node, block_idx, write)) in ops.iter().enumerate() {
                let block = BlockAddr(*block_idx * 97 + 130);
                let page = block.page(BlockSize::B64);
                if !p.page_allocated(*node, page) {
                    quiesce(&mut p, VecDeque::from(vec![(*node, ProtocolEvent::PageOp { page })]));
                }
                quiesce(&mut p, VecDeque::from(vec![(
                    *node,
                    ProtocolEvent::AccessFault { block, write: *write, token: i as u64 },
                )]));
            }
            // Check the invariant for every touched block.
            for (_, block_idx, _) in &ops {
                let block = BlockAddr(*block_idx * 97 + 130);
                let writers = (0..4).filter(|n| p.tag(*n, block) == Access::ReadWrite).count();
                let readers = (0..4).filter(|n| p.tag(*n, block) == Access::ReadOnly).count();
                prop_assert!(writers <= 1, "more than one writer for {}", block);
                if writers == 1 {
                    prop_assert_eq!(readers, 0, "readers coexist with a writer for {}", block);
                }
            }
        }

        /// Value propagation: a value written by whichever node last obtained
        /// write access is the value any other node subsequently reads.
        #[test]
        fn last_write_is_visible(writes in proptest::collection::vec(0usize..4, 1..20), reader in 0usize..4) {
            let mut p = DsmProtocol::new(DsmConfig::new(4, BlockSize::B64));
            let block = BlockAddr(777);
            let page = block.page(BlockSize::B64);
            let mut expected = 0u64;
            for (i, writer) in writes.iter().enumerate() {
                if !p.page_allocated(*writer, page) {
                    quiesce(&mut p, VecDeque::from(vec![(*writer, ProtocolEvent::PageOp { page })]));
                }
                quiesce(&mut p, VecDeque::from(vec![(
                    *writer,
                    ProtocolEvent::AccessFault { block, write: true, token: i as u64 },
                )]));
                expected = (i as u64 + 1) * 10;
                prop_assert!(p.cpu_write(*writer, block, expected));
            }
            if !p.page_allocated(reader, page) {
                quiesce(&mut p, VecDeque::from(vec![(reader, ProtocolEvent::PageOp { page })]));
            }
            quiesce(&mut p, VecDeque::from(vec![(
                reader,
                ProtocolEvent::AccessFault { block, write: false, token: 999 },
            )]));
            prop_assert_eq!(p.cpu_read(reader, block), Some(expected));
        }
    }
}
