//! Full-map directory state.
//!
//! Stache (and S-COMA) are full-map invalidation-based protocols: the home
//! node of each block records exactly which nodes hold copies. The directory
//! entry also carries the transient ("busy") states used while a request is
//! waiting for recalls or invalidation acknowledgements, plus a queue of
//! deferred requests for the block.

use std::collections::HashMap;
use std::fmt;

use pdq_sim::NodeId;

use crate::addr::BlockAddr;
use crate::msg::Request;

/// A set of nodes, stored as a bitmap (full-map directories of the era held
/// one presence bit per node; 64 bits comfortably covers the paper's largest
/// 16-node cluster).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const fn empty() -> Self {
        NodeSet(0)
    }

    /// A set containing only `node`.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = NodeSet::empty();
        s.insert(node);
        s
    }

    /// Adds a node.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node < 64, "NodeSet supports at most 64 nodes");
        self.0 |= 1 << node;
    }

    /// Removes a node; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let bit = 1 << node;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the set contains `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        node < 64 && self.0 & (1 << node) != 0
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..64usize).filter(|n| self.contains(*n))
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::empty();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

/// The coherence state of one block at its home directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No remote copies; home memory is the only valid copy.
    Uncached,
    /// The listed nodes (possibly including the home itself) hold read-only
    /// copies; home memory is valid.
    Shared(NodeSet),
    /// One node holds the only, writable copy; home memory may be stale.
    Exclusive(NodeId),
    /// A read request is waiting for the current owner to write back a shared
    /// copy.
    BusyShared {
        /// The node whose read triggered the recall.
        requester: NodeId,
        /// The owner being recalled.
        owner: NodeId,
    },
    /// A write request is waiting for invalidation acknowledgements.
    BusyInvalidating {
        /// The node whose write triggered the invalidations.
        requester: NodeId,
        /// Acknowledgements still outstanding.
        pending_acks: usize,
    },
    /// A write request is waiting for the current owner to write back and
    /// relinquish its copy.
    BusyRecall {
        /// The node whose write triggered the recall.
        requester: NodeId,
        /// The owner being recalled.
        owner: NodeId,
    },
}

impl DirState {
    /// Whether the entry is in a transient state (a request is in progress).
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            DirState::BusyShared { .. }
                | DirState::BusyInvalidating { .. }
                | DirState::BusyRecall { .. }
        )
    }
}

/// One block's directory entry: its state plus requests deferred while the
/// entry was busy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Current coherence state.
    pub state: DirState,
    /// Requests that arrived while the entry was busy, in arrival order.
    pub deferred: Vec<(NodeId, Request)>,
}

impl DirEntry {
    /// A fresh entry: uncached, nothing deferred.
    pub fn new() -> Self {
        Self {
            state: DirState::Uncached,
            deferred: Vec::new(),
        }
    }
}

impl Default for DirEntry {
    fn default() -> Self {
        Self::new()
    }
}

/// The directory of one home node: a map from block to [`DirEntry`].
///
/// Entries are created lazily; absent entries are `Uncached`.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<BlockAddr, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
        }
    }

    /// Read-only view of a block's entry (an implicit `Uncached` entry is
    /// materialized for absent blocks).
    pub fn entry(&self, block: BlockAddr) -> DirEntry {
        self.entries.get(&block).cloned().unwrap_or_default()
    }

    /// Mutable access to a block's entry, creating it if absent.
    pub fn entry_mut(&mut self, block: BlockAddr) -> &mut DirEntry {
        self.entries.entry(block).or_default()
    }

    /// Number of blocks with a materialized entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been materialized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries currently in a busy (transient) state.
    pub fn busy_entries(&self) -> usize {
        self.entries.values().filter(|e| e.state.is_busy()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_basic_operations() {
        let mut s = NodeSet::empty();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(7);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7]);
        assert_eq!(NodeSet::singleton(5).len(), 1);
        assert_eq!(s.to_string(), "{7}");
    }

    #[test]
    fn nodeset_from_iterator() {
        let s: NodeSet = [1usize, 2, 2, 5].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(s.contains(5));
    }

    #[test]
    #[should_panic(expected = "at most 64 nodes")]
    fn nodeset_rejects_large_ids() {
        let mut s = NodeSet::empty();
        s.insert(64);
    }

    #[test]
    fn dirstate_busy_detection() {
        assert!(!DirState::Uncached.is_busy());
        assert!(!DirState::Shared(NodeSet::empty()).is_busy());
        assert!(!DirState::Exclusive(1).is_busy());
        assert!(DirState::BusyShared {
            requester: 0,
            owner: 1
        }
        .is_busy());
        assert!(DirState::BusyInvalidating {
            requester: 0,
            pending_acks: 2
        }
        .is_busy());
        assert!(DirState::BusyRecall {
            requester: 0,
            owner: 1
        }
        .is_busy());
    }

    #[test]
    fn directory_entries_default_to_uncached() {
        let dir = Directory::new();
        assert!(dir.is_empty());
        assert_eq!(dir.entry(BlockAddr(9)).state, DirState::Uncached);
    }

    #[test]
    fn directory_entry_mut_materializes() {
        let mut dir = Directory::new();
        dir.entry_mut(BlockAddr(1)).state = DirState::Exclusive(2);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.entry(BlockAddr(1)).state, DirState::Exclusive(2));
        assert_eq!(dir.busy_entries(), 0);
        dir.entry_mut(BlockAddr(2)).state = DirState::BusyRecall {
            requester: 0,
            owner: 2,
        };
        assert_eq!(dir.busy_entries(), 1);
    }
}
