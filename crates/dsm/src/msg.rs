//! Protocol messages and events.

use std::fmt;

use pdq_core::SyncKey;
use pdq_sim::NodeId;

use crate::addr::{BlockAddr, PageAddr};

/// A coherence request sent to a block's home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Requester wants a read-only copy.
    GetShared,
    /// Requester wants a writable copy (invalidating all others).
    GetExclusive,
}

/// A protocol message travelling between nodes (or from a node to itself when
/// the requester is the home node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// A coherence request from `requester` for `block`.
    Req {
        /// The request kind.
        request: Request,
        /// The faulting node.
        requester: NodeId,
        /// The block being requested.
        block: BlockAddr,
    },
    /// Home asks a sharer to drop its read-only copy.
    Invalidate {
        /// The block to invalidate.
        block: BlockAddr,
        /// The home node expecting the acknowledgement.
        home: NodeId,
    },
    /// A sharer acknowledges an invalidation.
    InvalAck {
        /// The block that was invalidated.
        block: BlockAddr,
        /// The node acknowledging.
        from: NodeId,
    },
    /// Home asks the exclusive owner to downgrade to read-only and send the
    /// current data back.
    RecallShared {
        /// The block being recalled.
        block: BlockAddr,
        /// The home node expecting the writeback.
        home: NodeId,
    },
    /// Home asks the exclusive owner to give up its copy entirely.
    RecallExclusive {
        /// The block being recalled.
        block: BlockAddr,
        /// The home node expecting the writeback.
        home: NodeId,
    },
    /// The (former) owner returns the current data, keeping a read-only copy.
    WritebackShared {
        /// The block written back.
        block: BlockAddr,
        /// The node writing back.
        from: NodeId,
        /// The current value of the block's verification word.
        value: u64,
    },
    /// The (former) owner returns the current data and drops its copy.
    WritebackExclusive {
        /// The block written back.
        block: BlockAddr,
        /// The node writing back.
        from: NodeId,
        /// The current value of the block's verification word.
        value: u64,
    },
    /// Home grants a read-only copy carrying the data.
    DataShared {
        /// The block granted.
        block: BlockAddr,
        /// The value of the block's verification word.
        value: u64,
    },
    /// Home grants a writable copy carrying the data.
    DataExclusive {
        /// The block granted.
        block: BlockAddr,
        /// The value of the block's verification word.
        value: u64,
    },
}

impl Message {
    /// The block the message concerns.
    pub fn block(&self) -> BlockAddr {
        match *self {
            Message::Req { block, .. }
            | Message::Invalidate { block, .. }
            | Message::InvalAck { block, .. }
            | Message::RecallShared { block, .. }
            | Message::RecallExclusive { block, .. }
            | Message::WritebackShared { block, .. }
            | Message::WritebackExclusive { block, .. }
            | Message::DataShared { block, .. }
            | Message::DataExclusive { block, .. } => block,
        }
    }

    /// The PDQ synchronization key of the handler for this message: the block
    /// address.
    pub fn sync_key(&self) -> SyncKey {
        self.block().sync_key()
    }

    /// Whether the message carries a data block (and therefore occupies the
    /// network and the handlers for longer).
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            Message::WritebackShared { .. }
                | Message::WritebackExclusive { .. }
                | Message::DataShared { .. }
                | Message::DataExclusive { .. }
        )
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Req {
                request: Request::GetShared,
                requester,
                block,
            } => {
                write!(f, "GETS({block}) from node {requester}")
            }
            Message::Req {
                request: Request::GetExclusive,
                requester,
                block,
            } => {
                write!(f, "GETX({block}) from node {requester}")
            }
            Message::Invalidate { block, .. } => write!(f, "INVAL({block})"),
            Message::InvalAck { block, from } => write!(f, "INVAL_ACK({block}) from node {from}"),
            Message::RecallShared { block, .. } => write!(f, "RECALL_S({block})"),
            Message::RecallExclusive { block, .. } => write!(f, "RECALL_X({block})"),
            Message::WritebackShared { block, .. } => write!(f, "WB_S({block})"),
            Message::WritebackExclusive { block, .. } => write!(f, "WB_X({block})"),
            Message::DataShared { block, .. } => write!(f, "DATA_S({block})"),
            Message::DataExclusive { block, .. } => write!(f, "DATA_X({block})"),
        }
    }
}

/// A protocol event delivered to a node's PDQ: either a local block access
/// fault or an incoming network message (Figure 5/6: both event types flow
/// into the same queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A compute processor on this node accessed a block without sufficient
    /// access rights.
    AccessFault {
        /// The block that faulted.
        block: BlockAddr,
        /// Whether the faulting access was a store.
        write: bool,
        /// Caller-chosen token identifying the stalled computation; returned
        /// in [`HandlerOutcome::completions`](crate::HandlerOutcome) when the
        /// miss is satisfied.
        token: u64,
    },
    /// A message arrived from `src` (possibly this node itself).
    Incoming {
        /// The sending node.
        src: NodeId,
        /// The message.
        msg: Message,
    },
    /// Allocate (or deallocate) the Stache page frame for `page`; handlers for
    /// this event manipulate the tags of every block in the page and therefore
    /// use the `Sequential` synchronization key.
    PageOp {
        /// The page being allocated.
        page: PageAddr,
    },
}

impl ProtocolEvent {
    /// The PDQ synchronization key of this event.
    pub fn sync_key(&self) -> SyncKey {
        match self {
            ProtocolEvent::AccessFault { block, .. } => block.sync_key(),
            ProtocolEvent::Incoming { msg, .. } => msg.sync_key(),
            ProtocolEvent::PageOp { .. } => SyncKey::Sequential,
        }
    }
}

/// An outgoing message produced by a handler, to be delivered to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outgoing {
    /// The destination node (may equal the sending node).
    pub dst: NodeId,
    /// The message to deliver.
    pub msg: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_block_and_key() {
        let m = Message::DataShared {
            block: BlockAddr(0x42),
            value: 7,
        };
        assert_eq!(m.block(), BlockAddr(0x42));
        assert_eq!(m.sync_key(), SyncKey::key(0x42));
        assert!(m.carries_data());
    }

    #[test]
    fn control_messages_do_not_carry_data() {
        let m = Message::Invalidate {
            block: BlockAddr(1),
            home: 0,
        };
        assert!(!m.carries_data());
        let m = Message::Req {
            request: Request::GetShared,
            requester: 1,
            block: BlockAddr(1),
        };
        assert!(!m.carries_data());
    }

    #[test]
    fn event_sync_keys() {
        let fault = ProtocolEvent::AccessFault {
            block: BlockAddr(9),
            write: true,
            token: 0,
        };
        assert_eq!(fault.sync_key(), SyncKey::key(9));
        let page = ProtocolEvent::PageOp { page: PageAddr(1) };
        assert_eq!(page.sync_key(), SyncKey::Sequential);
        let incoming = ProtocolEvent::Incoming {
            src: 0,
            msg: Message::InvalAck {
                block: BlockAddr(3),
                from: 0,
            },
        };
        assert_eq!(incoming.sync_key(), SyncKey::key(3));
    }

    #[test]
    fn display_is_informative() {
        let m = Message::Req {
            request: Request::GetExclusive,
            requester: 2,
            block: BlockAddr(5),
        };
        assert!(m.to_string().contains("GETX"));
        assert!(m.to_string().contains("node 2"));
    }
}
