//! Global addresses, blocks, pages, and home-node mapping.

use std::fmt;

use pdq_core::SyncKey;
use pdq_sim::NodeId;

/// Number of bytes in a shared-memory page (4 KB, the allocation granularity
/// of Stache).
pub const PAGE_BYTES: u64 = 4096;

/// Protocol block (coherence unit) sizes evaluated in the paper.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockSize {
    /// 32-byte blocks (Figure 10/11, top).
    B32,
    /// 64-byte blocks (the default configuration).
    #[default]
    B64,
    /// 128-byte blocks (Figure 10/11, bottom).
    B128,
}

impl BlockSize {
    /// Size in bytes.
    pub const fn bytes(&self) -> u64 {
        match self {
            BlockSize::B32 => 32,
            BlockSize::B64 => 64,
            BlockSize::B128 => 128,
        }
    }

    /// Number of blocks in one page.
    pub const fn blocks_per_page(&self) -> u64 {
        PAGE_BYTES / self.bytes()
    }

    /// All evaluated block sizes.
    pub const fn all() -> [BlockSize; 3] {
        [BlockSize::B32, BlockSize::B64, BlockSize::B128]
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// A global shared-memory byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr(pub u64);

impl GlobalAddr {
    /// The block containing this address under the given block size.
    pub fn block(&self, size: BlockSize) -> BlockAddr {
        BlockAddr(self.0 / size.bytes())
    }

    /// The page containing this address.
    pub fn page(&self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }
}

impl fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr {:#x}", self.0)
    }
}

/// A block index (global byte address divided by the block size).
///
/// The block address is the PDQ synchronization key of every coherence
/// handler, so handlers manipulating distinct blocks run in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The page this block belongs to under the given block size.
    pub fn page(&self, size: BlockSize) -> PageAddr {
        PageAddr(self.0 / size.blocks_per_page())
    }

    /// First byte address of this block.
    pub fn base(&self, size: BlockSize) -> GlobalAddr {
        GlobalAddr(self.0 * size.bytes())
    }

    /// The PDQ synchronization key for handlers touching this block.
    pub fn sync_key(&self) -> SyncKey {
        SyncKey::key(self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {:#x}", self.0)
    }
}

/// A page index (global byte address divided by [`PAGE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// The blocks making up this page under the given block size.
    pub fn blocks(&self, size: BlockSize) -> impl Iterator<Item = BlockAddr> {
        let start = self.0 * size.blocks_per_page();
        (start..start + size.blocks_per_page()).map(BlockAddr)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page {:#x}", self.0)
    }
}

/// Maps blocks and pages to their home node.
///
/// Pages are distributed round-robin across the nodes of the cluster, the
/// usual first-touch-free placement used when no better information exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeMap {
    nodes: usize,
    block_size: BlockSize,
}

impl HomeMap {
    /// Creates a map for a cluster of `nodes` nodes (at least one).
    pub fn new(nodes: usize, block_size: BlockSize) -> Self {
        Self {
            nodes: nodes.max(1),
            block_size,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Block size in use.
    pub fn block_size(&self) -> BlockSize {
        self.block_size
    }

    /// Home node of a page.
    pub fn home_of_page(&self, page: PageAddr) -> NodeId {
        (page.0 % self.nodes as u64) as NodeId
    }

    /// Home node of a block.
    pub fn home_of_block(&self, block: BlockAddr) -> NodeId {
        self.home_of_page(block.page(self.block_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_properties() {
        assert_eq!(BlockSize::B32.bytes(), 32);
        assert_eq!(BlockSize::B64.blocks_per_page(), 64);
        assert_eq!(BlockSize::B128.blocks_per_page(), 32);
        assert_eq!(BlockSize::default(), BlockSize::B64);
        assert_eq!(BlockSize::all().len(), 3);
        assert_eq!(BlockSize::B64.to_string(), "64B");
    }

    #[test]
    fn address_decomposition() {
        let addr = GlobalAddr(0x1234);
        assert_eq!(addr.block(BlockSize::B64), BlockAddr(0x1234 / 64));
        assert_eq!(addr.page(), PageAddr(1));
        let block = addr.block(BlockSize::B64);
        assert_eq!(block.page(BlockSize::B64), PageAddr(1));
        assert_eq!(block.base(BlockSize::B64).0 % 64, 0);
    }

    #[test]
    fn sync_key_is_the_block_index() {
        assert_eq!(BlockAddr(0x100).sync_key(), SyncKey::key(0x100));
    }

    #[test]
    fn page_blocks_enumerates_every_block_once() {
        let page = PageAddr(3);
        let blocks: Vec<BlockAddr> = page.blocks(BlockSize::B64).collect();
        assert_eq!(blocks.len(), 64);
        assert!(blocks.iter().all(|b| b.page(BlockSize::B64) == page));
    }

    #[test]
    fn home_assignment_is_round_robin_by_page() {
        let map = HomeMap::new(4, BlockSize::B64);
        assert_eq!(map.home_of_page(PageAddr(0)), 0);
        assert_eq!(map.home_of_page(PageAddr(1)), 1);
        assert_eq!(map.home_of_page(PageAddr(5)), 1);
        // All blocks of one page share a home.
        let page = PageAddr(2);
        for block in page.blocks(BlockSize::B64) {
            assert_eq!(map.home_of_block(block), 2);
        }
    }

    #[test]
    fn home_map_clamps_nodes_to_one() {
        let map = HomeMap::new(0, BlockSize::B64);
        assert_eq!(map.nodes(), 1);
        assert_eq!(map.home_of_block(BlockAddr(12345)), 0);
    }
}
