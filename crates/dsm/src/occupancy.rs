//! Protocol occupancy model (Table 1 of the paper).
//!
//! The paper characterizes each machine by how long its protocol engine is
//! occupied per handler and how long the processor-side actions take around a
//! miss. This module encodes the Table-1 breakdown of a simple remote read
//! miss for a 64-byte block and generalizes it to the other handler classes
//! and block sizes used by the evaluation.
//!
//! All values are 400 MHz processor cycles.

use pdq_sim::Cycles;

use crate::addr::BlockSize;
use crate::protocol::HandlerClass;

/// Which protocol engine executes the handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolEngine {
    /// S-COMA: an all-hardware finite-state machine; occupancy is memory
    /// access time only (the paper's conservative model).
    SComa,
    /// Hurricane: embedded protocol processors integrated with the PDQ and the
    /// fine-grain tags on one custom device.
    Hurricane,
    /// Hurricane-1: commodity SMP processors dedicated to protocol execution,
    /// reaching the device over the memory bus.
    Hurricane1,
    /// Hurricane-1 Mult: commodity SMP processors multiplexed between
    /// computation and protocol execution (adds scheduling/cache-interference
    /// overhead per handler on top of Hurricane-1).
    Hurricane1Mult,
}

impl ProtocolEngine {
    /// All engines, in the order the paper presents them.
    pub const fn all() -> [ProtocolEngine; 4] {
        [
            ProtocolEngine::SComa,
            ProtocolEngine::Hurricane,
            ProtocolEngine::Hurricane1,
            ProtocolEngine::Hurricane1Mult,
        ]
    }

    /// Whether handlers are executed in software (and therefore pay
    /// instruction-execution overhead).
    pub fn is_software(&self) -> bool {
        !matches!(self, ProtocolEngine::SComa)
    }
}

/// The Table-1 breakdown of a simple remote read miss, split into the three
/// categories the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissBreakdown {
    /// Caching node: detect the miss and issue the bus transaction.
    pub detect_miss: Cycles,
    /// Caching node: dispatch the request handler.
    pub request_dispatch: Cycles,
    /// Caching node: read the fault state and send the request message.
    pub request_body: Cycles,
    /// Home node: dispatch the reply handler.
    pub reply_dispatch: Cycles,
    /// Home node: directory lookup.
    pub reply_directory: Cycles,
    /// Home node: fetch the data block, change the tag, send the reply.
    pub reply_data: Cycles,
    /// Caching node: dispatch the response handler.
    pub response_dispatch: Cycles,
    /// Caching node: place the data and change the tag.
    pub response_body: Cycles,
    /// Caching node: resume the processor and reissue the bus transaction.
    pub resume: Cycles,
    /// Caching node: fetch the data into the cache and complete the load.
    pub complete_load: Cycles,
    /// One-way network latency (appears twice in the round trip).
    pub network: Cycles,
}

impl MissBreakdown {
    /// Request-category protocol occupancy (what the protocol engine is busy
    /// for on the caching node).
    pub fn request_occupancy(&self) -> Cycles {
        self.request_dispatch + self.request_body
    }

    /// Reply-category protocol occupancy (home node).
    pub fn reply_occupancy(&self) -> Cycles {
        self.reply_dispatch + self.reply_directory + self.reply_data
    }

    /// Response-category protocol occupancy (caching node).
    pub fn response_occupancy(&self) -> Cycles {
        self.response_dispatch + self.response_body
    }

    /// Total round-trip latency of the miss (the "Total" row of Table 1).
    pub fn total(&self) -> Cycles {
        self.detect_miss
            + self.request_occupancy()
            + self.network
            + self.reply_occupancy()
            + self.network
            + self.response_occupancy()
            + self.resume
            + self.complete_load
    }
}

/// Cost model mapping `(engine, handler class, block size)` to protocol
/// occupancy, plus the processor-side costs around a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyModel {
    engine: ProtocolEngine,
    block_size: BlockSize,
}

/// Extra per-handler overhead of multiplexed scheduling (context switch out of
/// the computation plus protocol-state cache interference, Section 4.2).
pub const MULT_SCHEDULING_OVERHEAD: Cycles = Cycles::new(40);

impl OccupancyModel {
    /// Creates the cost model for one machine and block size.
    pub fn new(engine: ProtocolEngine, block_size: BlockSize) -> Self {
        Self { engine, block_size }
    }

    /// The engine being modelled.
    pub fn engine(&self) -> ProtocolEngine {
        self.engine
    }

    /// The protocol block size being modelled.
    pub fn block_size(&self) -> BlockSize {
        self.block_size
    }

    /// Per-handler scheduling overhead (zero except for Hurricane-1 Mult).
    pub fn scheduling_overhead(&self) -> Cycles {
        match self.engine {
            ProtocolEngine::Hurricane1Mult => MULT_SCHEDULING_OVERHEAD,
            _ => Cycles::ZERO,
        }
    }

    /// Dispatch cost charged at the start of every handler (reading the PDR,
    /// decoding the event). Taken from the "dispatch handler" rows of Table 1;
    /// the request row is the most expensive because it includes observing the
    /// block access fault.
    fn dispatch(&self, class: HandlerClass) -> Cycles {
        let (request, reply, response) = match self.engine {
            ProtocolEngine::SComa => (12, 1, 1),
            ProtocolEngine::Hurricane => (16, 3, 4),
            ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult => (87, 51, 50),
        };
        let cycles = match class {
            HandlerClass::Request => request,
            HandlerClass::ReplyData | HandlerClass::ReplyControl | HandlerClass::PageOp => reply,
            HandlerClass::Control => reply,
            HandlerClass::Response => response,
        };
        Cycles::new(cycles)
    }

    /// The fixed (block-size independent) body cost of a handler class.
    fn body(&self, class: HandlerClass) -> Cycles {
        let cycles = match (self.engine, class) {
            // S-COMA: pure hardware; only memory/directory access time.
            (ProtocolEngine::SComa, HandlerClass::Request) => 0,
            (ProtocolEngine::SComa, HandlerClass::ReplyData) => 8,
            (ProtocolEngine::SComa, HandlerClass::ReplyControl) => 8,
            (ProtocolEngine::SComa, HandlerClass::Control) => 6,
            (ProtocolEngine::SComa, HandlerClass::Response) => 8,
            (ProtocolEngine::SComa, HandlerClass::PageOp) => 40,

            // Hurricane: embedded processors; instruction execution overhead.
            (ProtocolEngine::Hurricane, HandlerClass::Request) => 36,
            (ProtocolEngine::Hurricane, HandlerClass::ReplyData) => 61,
            (ProtocolEngine::Hurricane, HandlerClass::ReplyControl) => 50,
            (ProtocolEngine::Hurricane, HandlerClass::Control) => 40,
            (ProtocolEngine::Hurricane, HandlerClass::Response) => 50,
            (ProtocolEngine::Hurricane, HandlerClass::PageOp) => 400,

            // Hurricane-1 (and Mult): commodity SMP processors across the bus.
            (
                ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult,
                HandlerClass::Request,
            ) => 141,
            (
                ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult,
                HandlerClass::ReplyData,
            ) => 121,
            (
                ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult,
                HandlerClass::ReplyControl,
            ) => 100,
            (
                ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult,
                HandlerClass::Control,
            ) => 90,
            (
                ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult,
                HandlerClass::Response,
            ) => 63,
            (ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult, HandlerClass::PageOp) => {
                800
            }
        };
        Cycles::new(cycles)
    }

    /// The data-movement cost of touching one block in memory (and pushing it
    /// to/from the network queues), which scales with the block size. The
    /// 64-byte values are calibrated so that the reply row of Table 1 is
    /// reproduced exactly; other sizes scale the transfer portion linearly.
    pub fn data_transfer(&self, blocks: u32) -> Cycles {
        if blocks == 0 {
            return Cycles::ZERO;
        }
        // fixed memory-access latency + per-byte transfer cost
        let (fixed, per_64b) = match self.engine {
            ProtocolEngine::SComa => (60u64, 76u64),
            ProtocolEngine::Hurricane => (60, 80),
            // Hurricane-1 moves the block over the memory bus between the
            // memory, the protocol processor cache, and the send queue.
            ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult => (60, 145),
        };
        let bytes = self.block_size.bytes();
        let per_block = fixed + per_64b * bytes / 64;
        Cycles::new(per_block * u64::from(blocks))
    }

    /// The occupancy charged to a protocol engine for one handler execution.
    ///
    /// `memory_blocks` is the number of block-sized memory accesses the
    /// handler performed (reported by
    /// [`HandlerOutcome::memory_blocks`](crate::HandlerOutcome)).
    pub fn handler_occupancy(&self, class: HandlerClass, memory_blocks: u32) -> Cycles {
        self.dispatch(class)
            + self.body(class)
            + self.data_transfer(memory_blocks)
            + self.scheduling_overhead()
    }

    /// Processor-side cost of detecting a miss and issuing the bus transaction.
    pub fn detect_miss(&self) -> Cycles {
        Cycles::new(5)
    }

    /// Processor-side cost of resuming after the response handler completes
    /// (reissuing the bus transaction). Hurricane-1 pays much more because the
    /// processor polls a cachable PDR across the memory bus.
    pub fn resume(&self) -> Cycles {
        match self.engine {
            ProtocolEngine::SComa | ProtocolEngine::Hurricane => Cycles::new(6),
            ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult => Cycles::new(178),
        }
    }

    /// Processor-side cost of finally fetching the data into the cache and
    /// completing the load.
    pub fn complete_load(&self) -> Cycles {
        Cycles::new(63)
    }

    /// The full Table-1 breakdown of a simple remote read miss under this
    /// model (only meaningful for the 64-byte block size, where it reproduces
    /// the paper's numbers exactly).
    pub fn miss_breakdown(&self) -> MissBreakdown {
        let reply_data = self.data_transfer(1) + self.reply_send_extra();
        MissBreakdown {
            detect_miss: self.detect_miss(),
            request_dispatch: self.dispatch(HandlerClass::Request) + self.scheduling_overhead(),
            request_body: self.body(HandlerClass::Request),
            reply_dispatch: self.dispatch(HandlerClass::ReplyData) + self.scheduling_overhead(),
            reply_directory: self.body(HandlerClass::ReplyData),
            reply_data,
            response_dispatch: self.dispatch(HandlerClass::Response) + self.scheduling_overhead(),
            response_body: self.response_place_data(),
            resume: self.resume(),
            complete_load: self.complete_load(),
            network: Cycles::new(100),
        }
    }

    /// Extra send-side cost folded into the "fetch data, change tag, send" row
    /// beyond the raw data transfer (zero in this model; kept separate so the
    /// breakdown code documents where the row comes from).
    fn reply_send_extra(&self) -> Cycles {
        Cycles::ZERO
    }

    /// The "place data, change tag" row of Table 1.
    fn response_place_data(&self) -> Cycles {
        let base = match self.engine {
            ProtocolEngine::SComa => 8u64,
            ProtocolEngine::Hurricane => 50,
            ProtocolEngine::Hurricane1 | ProtocolEngine::Hurricane1Mult => 63,
        };
        // The place-data cost also grows with larger blocks, proportionally to
        // the transfer component.
        let bytes = self.block_size.bytes();
        Cycles::new(base * bytes / 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(engine: ProtocolEngine) -> OccupancyModel {
        OccupancyModel::new(engine, BlockSize::B64)
    }

    #[test]
    fn table1_total_latencies_are_reproduced() {
        // Table 1: 440 / 584 / 1164 cycles for S-COMA / Hurricane / Hurricane-1.
        assert_eq!(
            model(ProtocolEngine::SComa).miss_breakdown().total(),
            Cycles::new(440)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane).miss_breakdown().total(),
            Cycles::new(584)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane1).miss_breakdown().total(),
            Cycles::new(1164)
        );
    }

    #[test]
    fn table1_request_occupancies() {
        assert_eq!(
            model(ProtocolEngine::SComa)
                .miss_breakdown()
                .request_occupancy(),
            Cycles::new(12)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane)
                .miss_breakdown()
                .request_occupancy(),
            Cycles::new(52)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane1)
                .miss_breakdown()
                .request_occupancy(),
            Cycles::new(228)
        );
    }

    #[test]
    fn table1_reply_occupancies() {
        assert_eq!(
            model(ProtocolEngine::SComa)
                .miss_breakdown()
                .reply_occupancy(),
            Cycles::new(145)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane)
                .miss_breakdown()
                .reply_occupancy(),
            Cycles::new(204)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane1)
                .miss_breakdown()
                .reply_occupancy(),
            Cycles::new(377)
        );
    }

    #[test]
    fn table1_response_occupancies() {
        assert_eq!(
            model(ProtocolEngine::SComa)
                .miss_breakdown()
                .response_occupancy(),
            Cycles::new(9)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane)
                .miss_breakdown()
                .response_occupancy(),
            Cycles::new(54)
        );
        assert_eq!(
            model(ProtocolEngine::Hurricane1)
                .miss_breakdown()
                .response_occupancy(),
            Cycles::new(113)
        );
    }

    #[test]
    fn software_engines_have_higher_occupancy_than_hardware() {
        for class in [
            HandlerClass::Request,
            HandlerClass::ReplyData,
            HandlerClass::ReplyControl,
            HandlerClass::Control,
            HandlerClass::Response,
        ] {
            let scoma = model(ProtocolEngine::SComa).handler_occupancy(class, 1);
            let hurricane = model(ProtocolEngine::Hurricane).handler_occupancy(class, 1);
            let hurricane1 = model(ProtocolEngine::Hurricane1).handler_occupancy(class, 1);
            assert!(scoma < hurricane, "{class:?}");
            assert!(hurricane < hurricane1, "{class:?}");
        }
    }

    #[test]
    fn mult_adds_scheduling_overhead() {
        let h1 = model(ProtocolEngine::Hurricane1).handler_occupancy(HandlerClass::ReplyData, 1);
        let mult =
            model(ProtocolEngine::Hurricane1Mult).handler_occupancy(HandlerClass::ReplyData, 1);
        assert_eq!(mult, h1 + MULT_SCHEDULING_OVERHEAD);
        assert!(ProtocolEngine::Hurricane1Mult.is_software());
        assert!(!ProtocolEngine::SComa.is_software());
    }

    #[test]
    fn larger_blocks_increase_data_occupancy_but_not_control_occupancy() {
        let small = OccupancyModel::new(ProtocolEngine::Hurricane, BlockSize::B32);
        let large = OccupancyModel::new(ProtocolEngine::Hurricane, BlockSize::B128);
        assert!(
            large.handler_occupancy(HandlerClass::ReplyData, 1)
                > small.handler_occupancy(HandlerClass::ReplyData, 1)
        );
        assert_eq!(
            large.handler_occupancy(HandlerClass::Control, 0),
            small.handler_occupancy(HandlerClass::Control, 0)
        );
    }

    #[test]
    fn data_transfer_is_linear_in_blocks_touched() {
        let m = model(ProtocolEngine::Hurricane);
        assert_eq!(m.data_transfer(0), Cycles::ZERO);
        assert_eq!(m.data_transfer(2), m.data_transfer(1) + m.data_transfer(1));
    }

    #[test]
    fn all_engines_are_enumerable() {
        assert_eq!(ProtocolEngine::all().len(), 4);
    }
}
