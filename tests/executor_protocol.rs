//! Integration of the real multi-threaded PDQ executor with the DSM protocol:
//! protocol handlers run on actual worker threads, keyed by the block they
//! manipulate, and the memory stays coherent without any lock inside the
//! handlers beyond the single coarse mutex required by Rust for shared state.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use pdq_repro::core::executor::{Executor, PdqBuilder};
use pdq_repro::core::SyncKey;
use pdq_repro::dsm::{Access, BlockAddr, BlockSize, DsmConfig, DsmProtocol, ProtocolEvent};

/// Runs the protocol to quiescence by executing every handler as a job on the
/// PDQ executor, keyed by the handler's block, and chasing the produced
/// messages until none remain.
fn run_on_executor(protocol: Arc<Mutex<DsmProtocol>>, initial: Vec<(usize, ProtocolEvent)>) {
    let pool = PdqBuilder::new().workers(4).build();
    let queue: Arc<Mutex<VecDeque<(usize, ProtocolEvent)>>> =
        Arc::new(Mutex::new(initial.into_iter().collect()));

    // Drain in waves: submit everything currently queued, wait, repeat until
    // no handler produced further work.
    loop {
        let wave: Vec<(usize, ProtocolEvent)> = {
            let mut q = queue.lock().unwrap();
            q.drain(..).collect()
        };
        if wave.is_empty() {
            break;
        }
        for (node, event) in wave {
            let key = event.sync_key();
            let protocol = Arc::clone(&protocol);
            let queue = Arc::clone(&queue);
            pool.submit(
                key,
                Box::new(move || {
                    let outcome = protocol.lock().unwrap().handle(node, event);
                    let mut q = queue.lock().unwrap();
                    for out in outcome.outgoing {
                        q.push_back((
                            out.dst,
                            ProtocolEvent::Incoming {
                                src: node,
                                msg: out.msg,
                            },
                        ));
                    }
                    for r in outcome.refaults {
                        q.push_back((
                            node,
                            ProtocolEvent::AccessFault {
                                block: r.block,
                                write: r.write,
                                token: r.token,
                            },
                        ));
                    }
                }),
            )
            .expect("pool is running");
        }
        pool.flush();
    }
}

#[test]
fn protocol_handlers_on_the_executor_keep_memory_coherent() {
    let nodes = 4;
    let protocol = Arc::new(Mutex::new(DsmProtocol::new(DsmConfig::new(
        nodes,
        BlockSize::B64,
    ))));
    let blocks: Vec<BlockAddr> = (0..8).map(|i| BlockAddr(1000 + i * 7)).collect();

    // Every node takes write ownership of every block in turn and bumps its
    // value; page frames are allocated up front via Sequential-key handlers.
    for node in 0..nodes {
        let pages: Vec<_> = blocks.iter().map(|b| b.page(BlockSize::B64)).collect();
        run_on_executor(
            Arc::clone(&protocol),
            pages
                .into_iter()
                .map(|page| (node, ProtocolEvent::PageOp { page }))
                .collect(),
        );
        run_on_executor(
            Arc::clone(&protocol),
            blocks
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    (
                        node,
                        ProtocolEvent::AccessFault {
                            block: *b,
                            write: true,
                            token: i as u64,
                        },
                    )
                })
                .collect(),
        );
        let mut p = protocol.lock().unwrap();
        for block in &blocks {
            assert_eq!(
                p.tag(node, *block),
                Access::ReadWrite,
                "node {node} must own {block}"
            );
            let value = p.cpu_read(node, *block).expect("owner can read");
            assert!(p.cpu_write(node, *block, value + 1));
        }
    }

    // After all rounds, read every block from node 0 and check that all four
    // increments survived the ownership migrations.
    run_on_executor(
        Arc::clone(&protocol),
        blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    0usize,
                    ProtocolEvent::AccessFault {
                        block: *b,
                        write: false,
                        token: 100 + i as u64,
                    },
                )
            })
            .collect(),
    );
    let p = protocol.lock().unwrap();
    for block in &blocks {
        assert_eq!(
            p.cpu_read(0, *block),
            Some(nodes as u64),
            "lost update on {block}"
        );
    }
}

#[test]
fn sequential_key_events_serialize_against_block_handlers() {
    // Sanity-check the SyncKey mapping of protocol events used above.
    let block_event = ProtocolEvent::AccessFault {
        block: BlockAddr(5),
        write: false,
        token: 0,
    };
    assert_eq!(block_event.sync_key(), SyncKey::key(5));
    let page_event = ProtocolEvent::PageOp {
        page: BlockAddr(5).page(BlockSize::B64),
    };
    assert_eq!(page_event.sync_key(), SyncKey::Sequential);
}
