//! Cross-crate integration tests: the full stack from workload generation
//! through the DSM protocol and the cluster simulator, checked against the
//! qualitative results of the paper.

use pdq_repro::dsm::BlockSize;
use pdq_repro::hurricane::{latency, simulate, ClusterConfig, MachineSpec};
use pdq_repro::workloads::{AppKind, Topology, WorkloadScale};

fn quick(machine: MachineSpec, app: AppKind) -> pdq_repro::hurricane::SimReport {
    let cfg = ClusterConfig::baseline(machine).with_topology(Topology::new(4, 4));
    simulate(cfg, app, WorkloadScale(0.15))
}

#[test]
fn table1_matches_the_paper_exactly() {
    let totals: Vec<u64> = latency::table1(BlockSize::B64)
        .iter()
        .map(|row| row.total().as_u64())
        .collect();
    assert_eq!(totals, vec![440, 584, 1164]);
}

#[test]
fn every_machine_completes_every_application() {
    let machines = [
        MachineSpec::scoma(),
        MachineSpec::hurricane(2),
        MachineSpec::hurricane1(2),
        MachineSpec::hurricane1_mult(),
    ];
    for machine in machines {
        for app in AppKind::all() {
            let cfg = ClusterConfig::baseline(machine).with_topology(Topology::new(2, 2));
            let report = simulate(cfg, app, WorkloadScale(0.05));
            // On a tiny 2x2 cluster the load-imbalanced, communication-bound
            // applications can dip below a speedup of 1; the point here is
            // only that every machine/application pair runs to completion.
            assert!(report.speedup() > 0.2, "{machine} failed on {app}");
            assert_eq!(report.queue_stats.dispatched, report.queue_stats.completed);
        }
    }
}

#[test]
fn parallel_dispatch_improves_software_protocols_on_bandwidth_bound_apps() {
    // The paper's core result, figure 7: adding protocol processors (i.e.
    // exploiting the PDQ's parallel dispatch) improves Hurricane-1 on the
    // bandwidth-bound applications.
    for app in [AppKind::Fft, AppKind::Radix, AppKind::Cholesky] {
        let one = quick(MachineSpec::hurricane1(1), app);
        let four = quick(MachineSpec::hurricane1(4), app);
        assert!(
            four.speedup() > one.speedup() * 1.2,
            "{app}: expected >=20% improvement from 4 protocol processors, got {} -> {}",
            one.speedup(),
            four.speedup()
        );
    }
}

#[test]
fn computation_bound_applications_are_insensitive_to_protocol_speed() {
    // water-sp performs within a small margin of S-COMA on every machine.
    let scoma = quick(MachineSpec::scoma(), AppKind::WaterSp);
    for machine in [
        MachineSpec::hurricane(1),
        MachineSpec::hurricane1(1),
        MachineSpec::hurricane1_mult(),
    ] {
        let report = quick(machine, AppKind::WaterSp);
        let normalized = report.normalized_speedup(&scoma);
        assert!(
            normalized > 0.85,
            "{machine}: water-sp normalized speedup {normalized}"
        );
    }
}

#[test]
fn scoma_beats_single_processor_software_on_communication_bound_apps() {
    let scoma = quick(MachineSpec::scoma(), AppKind::Fft);
    let hurricane1 = quick(MachineSpec::hurricane1(1), AppKind::Fft);
    let hurricane = quick(MachineSpec::hurricane(1), AppKind::Fft);
    assert!(hurricane1.normalized_speedup(&scoma) < 0.7);
    assert!(hurricane.normalized_speedup(&scoma) < 1.0);
    // And the software systems order by their occupancies.
    assert!(hurricane.speedup() > hurricane1.speedup());
}

#[test]
fn multiplexed_scheduling_beats_a_single_dedicated_processor_on_fat_smps() {
    // The headline claim, in miniature: with 8 processors per node, using the
    // idle processors for protocol execution beats one dedicated protocol
    // processor.
    let topo = Topology::new(2, 8);
    let single = simulate(
        ClusterConfig::baseline(MachineSpec::hurricane1(1)).with_topology(topo),
        AppKind::Fft,
        WorkloadScale(0.15),
    );
    let mult = simulate(
        ClusterConfig::baseline(MachineSpec::hurricane1_mult()).with_topology(topo),
        AppKind::Fft,
        WorkloadScale(0.15),
    );
    assert!(
        mult.speedup() > single.speedup() * 1.3,
        "mult {} vs single {}",
        mult.speedup(),
        single.speedup()
    );
}

#[test]
fn simulations_are_reproducible() {
    let a = quick(MachineSpec::hurricane1_mult(), AppKind::Radix);
    let b = quick(MachineSpec::hurricane1_mult(), AppKind::Radix);
    assert_eq!(a.execution_cycles, b.execution_cycles);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.network_messages, b.network_messages);
    assert_eq!(a.interrupts, b.interrupts);
}

#[test]
fn block_size_shifts_the_software_hardware_gap() {
    // Larger blocks amortize software overhead for coarse-grain applications:
    // Hurricane-1's normalized speedup on cholesky improves from 32-byte to
    // 128-byte blocks (Figure 11).
    let run = |size| {
        let cfg = ClusterConfig::baseline(MachineSpec::hurricane1(1))
            .with_topology(Topology::new(4, 4))
            .with_block_size(size);
        let scoma = ClusterConfig::baseline(MachineSpec::scoma())
            .with_topology(Topology::new(4, 4))
            .with_block_size(size);
        let h1 = simulate(cfg, AppKind::Cholesky, WorkloadScale(0.15));
        let reference = simulate(scoma, AppKind::Cholesky, WorkloadScale(0.15));
        h1.normalized_speedup(&reference)
    };
    let small = run(BlockSize::B32);
    let large = run(BlockSize::B128);
    assert!(
        large > small,
        "expected the 128-byte protocol to narrow the gap: 32B={small:.2}, 128B={large:.2}"
    );
}
