//! Determinism of the discrete-event cluster simulation: the same
//! configuration and workload seed must reproduce byte-identical statistics,
//! and different seeds must actually change the simulated behavior.

use pdq_repro::hurricane::{simulate, ClusterConfig, MachineSpec, SimReport};
use pdq_repro::workloads::{AppKind, Topology, WorkloadScale};

fn run(seed: u64) -> SimReport {
    let config = ClusterConfig::baseline(MachineSpec::hurricane(2))
        .with_topology(Topology::new(2, 2))
        .with_seed(seed);
    simulate(config, AppKind::Fft, WorkloadScale::quick())
}

/// Renders every behavioral statistic of a report (excluding the embedded
/// configuration, which trivially differs across seeds) to a string that two
/// identical runs must reproduce byte-for-byte.
fn fingerprint(report: &SimReport) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{:?}|{}|{}|{}|{:?}",
        report.execution_cycles,
        report.uniprocessor_cycles,
        report.faults,
        report.network_messages,
        report.handlers,
        report.protocol_busy,
        report.mean_dispatch_wait,
        report.interrupts,
        report.mean_miss_latency,
        report.queue_stats,
    )
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = fingerprint(&run(0xDEC0DE));
    let b = fingerprint(&run(0xDEC0DE));
    assert_eq!(a, b, "two runs with the same seed diverged");
}

#[test]
fn same_seed_is_identical_across_machine_models() {
    for machine in [
        MachineSpec::scoma(),
        MachineSpec::hurricane(2),
        MachineSpec::hurricane1(2),
        MachineSpec::hurricane1_mult(),
    ] {
        let config = || {
            ClusterConfig::baseline(machine)
                .with_topology(Topology::new(2, 2))
                .with_seed(42)
        };
        let a = simulate(config(), AppKind::Barnes, WorkloadScale::quick());
        let b = simulate(config(), AppKind::Barnes, WorkloadScale::quick());
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "nondeterministic run on {:?}",
            machine
        );
    }
}

#[test]
fn different_seeds_change_the_simulation() {
    let a = fingerprint(&run(1));
    let b = fingerprint(&run(2));
    assert_ne!(a, b, "distinct seeds produced identical statistics");
}
