//! Property tests for `DetRng` stream splitting: the sweep engine's per-job
//! determinism rests on `(seed, stream)` pairs giving independent,
//! reproducible streams.

use pdq_repro::sim::DetRng;
use proptest::prelude::*;

/// First `n` values of a stream.
fn prefix(mut rng: DetRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same `(seed, stream)` pair always produces the identical stream.
    #[test]
    fn same_pair_same_stream(seed in 0u64..u64::MAX, stream in 0u64..u64::MAX) {
        prop_assert_eq!(
            prefix(DetRng::stream(seed, stream), 32),
            prefix(DetRng::stream(seed, stream), 32)
        );
    }

    /// Distinct stream indices under one seed produce streams that diverge
    /// within a short prefix (they are distinct generators, not shifted
    /// copies of each other).
    #[test]
    fn distinct_streams_have_distinct_prefixes(
        seed in 0u64..u64::MAX,
        a in 0u64..10_000,
        offset in 1u64..10_000,
    ) {
        let b = a + offset;
        let pa = prefix(DetRng::stream(seed, a), 8);
        let pb = prefix(DetRng::stream(seed, b), 8);
        prop_assert_ne!(&pa, &pb);
        // No lag-correlation either: stream b must not be stream a shifted
        // by one (a failure mode of additive stream derivation).
        prop_assert_ne!(&pa[1..], &pb[..7]);
    }

    /// Distinct seeds produce distinct streams for the same stream index.
    #[test]
    fn distinct_seeds_have_distinct_prefixes(
        seed in 0u64..u64::MAX,
        offset in 1u64..10_000,
        stream in 0u64..10_000,
    ) {
        prop_assert_ne!(
            prefix(DetRng::stream(seed, stream), 8),
            prefix(DetRng::stream(seed.wrapping_add(offset), stream), 8)
        );
    }

    /// Stateful `split` and stateless `stream` coexist: a split child is
    /// reproducible given the parent's history.
    #[test]
    fn split_children_remain_reproducible(seed in 0u64..u64::MAX, salt in 0u64..1_000) {
        let mut parent1 = DetRng::new(seed);
        let mut parent2 = DetRng::new(seed);
        prop_assert_eq!(
            prefix(parent1.split(salt), 16),
            prefix(parent2.split(salt), 16)
        );
    }
}
